"""Tests for Prometheus metrics export (repro.obs.metrics and the broker's
``stats --format prometheus`` / ``--metrics-port`` surfaces)."""

import asyncio
import re
import urllib.request
from bisect import bisect_left

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.service.metrics import ServiceMetrics, timing_enabled_from_env
from repro.service.server import BrokerServer

MESH = {"type": "mesh", "width": 6, "height": 6}

#: One Prometheus text-format sample line: name, optional labels, value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9eE.+-]+$"
)


def spec(src=0, dst=3, priority=1, period=100, length=4):
    return {"src": src, "dst": dst, "priority": priority,
            "period": period, "length": length, "deadline": period}


def check_exposition(text):
    """Validate HELP/TYPE structure and sample syntax; return the samples
    grouped by family name."""
    families = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            current = line.split()[2]
            assert current not in families, f"duplicate family {current}"
            families[current] = {"type": None, "samples": []}
        elif line.startswith("# TYPE "):
            name = line.split()[2]
            assert name == current, "TYPE must follow its HELP line"
            families[current]["type"] = line.split()[3]
        else:
            assert SAMPLE_RE.match(line), f"bad sample line: {line!r}"
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert current in (name, base), \
                f"sample {name!r} outside its family block"
            families[current]["samples"].append(line)
    assert text.endswith("\n")
    return families


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_histogram_pow2_matches_bisect(self):
        """The O(1) bit_length bucketing must agree with the generic
        bisect rule on every boundary and interior value."""
        values = [0.0, 0.5, 1, 1.0001, 2, 2.5, 3, 4, 1023, 1024, 1024.5,
                  (1 << 23), (1 << 23) + 1, 1e12]
        fast = Histogram()
        assert fast._pow2
        for v in values:
            fast.observe(v)
        slow = Histogram(bounds=tuple(float(b) + 0.0
                                      for b in DEFAULT_TIME_BUCKETS_US))
        slow._pow2 = False
        for v in values:
            slow.observe(v)
        # Same ladder, forced generic path: identical bucket counts.
        expect = [0] * (len(DEFAULT_TIME_BUCKETS_US) + 1)
        for v in values:
            expect[bisect_left(DEFAULT_TIME_BUCKETS_US, v)] += 1
        assert fast.counts == slow.counts == expect
        assert fast.count == len(values)
        assert fast.max == 1e12

    def test_histogram_bounds_validated(self):
        with pytest.raises(ReproError):
            Histogram(bounds=())
        with pytest.raises(ReproError):
            Histogram(bounds=(1, 1, 2))
        with pytest.raises(ReproError):
            Histogram(bounds=(2, 1))

    def test_histogram_quantiles(self):
        h = Histogram(bounds=(1, 2, 4, 8))
        for v in (1, 2, 2, 4):
            h.observe(v)
        assert h.quantile(0.25) == 1
        assert h.quantile(0.5) == 2
        assert h.quantile(1.0) == 4
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_histogram_render_is_cumulative(self):
        h = Histogram(bounds=(1, 2, 4))
        for v in (0.5, 1.5, 3, 100):
            h.observe(v)
        lines = h.samples("lat", {})
        assert lines == [
            'lat_bucket{le="1"} 1',
            'lat_bucket{le="2"} 2',
            'lat_bucket{le="4"} 3',
            'lat_bucket{le="+Inf"} 4',
            "lat_sum 105",
            "lat_count 4",
        ]


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help", op="a")
        assert reg.counter("x_total", op="a") is c
        assert reg.counter("x_total", op="b") is not c
        with pytest.raises(ReproError, match="already registered"):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9lead", "with space", "dash-ed"):
            with pytest.raises(ReproError):
                reg.counter(bad)

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", "h", msg='say "hi"\nplease\\now').inc()
        line = reg.render().splitlines()[2]
        assert line == \
            'esc_total{msg="say \\"hi\\"\\nplease\\\\now"} 1'

    def test_render_sorted_and_parseable(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "B.", op="z").inc()
        reg.counter("b_total", "B.", op="a").inc(2)
        reg.gauge("a_gauge", "A.").set(1.5)
        reg.histogram("c_us", "C.", bounds=(1, 2)).observe(1)
        families = check_exposition(reg.render())
        assert list(families) == ["a_gauge", "b_total", "c_us"]
        assert families["b_total"]["samples"] == [
            'b_total{op="a"} 2', 'b_total{op="z"} 1',
        ]
        assert families["a_gauge"]["samples"] == ["a_gauge 1.5"]


class TestServiceMetricsExport:
    def test_timing_env_parsing(self, monkeypatch):
        for val, expect in (("1", True), ("0", False), ("false", False),
                            ("off", False), ("yes", True)):
            monkeypatch.setenv("REPRO_SERVICE_TIMING", val)
            assert timing_enabled_from_env() is expect
        monkeypatch.delenv("REPRO_SERVICE_TIMING")
        assert timing_enabled_from_env() is True

    def test_timing_disabled_skips_histograms(self):
        m = ServiceMetrics(timing=False)
        assert not m.timing_enabled
        m.record_op("admit")
        m.record_op("admit", None, error=True)
        assert m.op_counts["admit"] == 2 and m.op_errors["admit"] == 1
        assert m.op_latency == {}
        assert m.to_dict()["latency"] == {}

    def test_sync_registry_matches_scalars(self):
        m = ServiceMetrics(timing=True)
        m.record_op("admit", 0.001)
        m.record_op("admit", 0.002)
        m.record_op("query", 0.001, error=True)
        m.admitted_ok += 1
        m.admitted_rejected += 2
        m.connections += 3
        m.record_batch(4)
        text = m.render_prometheus()
        families = check_exposition(text)
        assert 'repro_broker_ops_total{op="admit"} 2' in \
            families["repro_broker_ops_total"]["samples"]
        assert 'repro_broker_op_errors_total{op="query"} 1' in \
            families["repro_broker_op_errors_total"]["samples"]
        assert 'repro_broker_admit_total{outcome="rejected"} 2' in \
            families["repro_broker_admit_total"]["samples"]
        assert "repro_broker_connections_total 3" in \
            families["repro_broker_connections_total"]["samples"]
        assert "repro_broker_batch_max_size 4" in \
            families["repro_broker_batch_max_size"]["samples"]
        assert families["repro_broker_op_latency_us"]["type"] == "histogram"

    def test_latency_histogram_buckets_monotone(self):
        m = ServiceMetrics(timing=True)
        for s in (1e-6, 5e-6, 1e-3, 0.1, 2.0):
            m.record_op("admit", s)
        lines = [
            ln for ln in m.render_prometheus().splitlines()
            if ln.startswith("repro_broker_op_latency_us_bucket")
        ]
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5  # +Inf bucket equals _count


class TestBrokerPrometheus:
    def test_stats_prometheus_format(self):
        server = BrokerServer(MESH)
        assert server.handle_request(
            {"op": "admit", "streams": [spec()]})["ok"]
        resp = server.handle_request({"op": "stats", "format": "prometheus"})
        assert resp["ok"]
        families = check_exposition(resp["prometheus"])
        engine = {
            name: fam["samples"] for name, fam in families.items()
            if name.startswith("repro_engine_")
        }
        assert engine["repro_engine_admitted_streams"] == \
            ["repro_engine_admitted_streams 1"]
        assert engine["repro_engine_admits_total"] == \
            ["repro_engine_admits_total 1"]
        for gauge in ("repro_engine_cache_hit_rate",
                      "repro_engine_dirty_frontier_last",
                      "repro_engine_dirty_frontier_max"):
            assert gauge in engine
        assert "repro_engine_dirty_frontier_total_total" not in families
        assert "repro_engine_dirty_frontier_total" in families

    def test_json_stats_include_dirty_frontier(self):
        server = BrokerServer(MESH)
        server.handle_request({"op": "admit", "streams": [spec()]})
        engine = server.handle_request({"op": "stats"})["engine"]
        assert engine["dirty_last"] >= 1
        assert engine["dirty_max"] >= engine["dirty_last"] >= 0
        assert engine["dirty_total"] >= engine["dirty_max"]

    def test_counters_survive_snapshot_journal_restart(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({"op": "admit", "streams": [spec()]})
        server.handle_request(
            {"op": "admit", "streams": [spec(src=6, dst=9)]})
        before = server.handle_request(
            {"op": "stats", "format": "prometheus"})["prometheus"]
        assert "repro_engine_admitted_streams 2" in before

        recovered = BrokerServer(MESH, state_dir=state)
        after = recovered.handle_request(
            {"op": "stats", "format": "prometheus"})["prometheus"]
        families = check_exposition(after)
        assert "repro_engine_admitted_streams 2" in after
        # Recovery replays the journal through the engine, so ops resume
        # from a non-zero count rather than resetting to an empty engine.
        (ops_line,) = families["repro_engine_ops_total"]["samples"]
        assert float(ops_line.rsplit(" ", 1)[1]) > 0

    def test_http_scrape_endpoint(self):
        server = BrokerServer(MESH)
        server.handle_request({"op": "admit", "streams": [spec()]})

        def get(url):
            try:
                with urllib.request.urlopen(url, timeout=5) as resp:
                    return resp.status, resp.headers, resp.read().decode()
            except urllib.error.HTTPError as exc:
                return exc.code, exc.headers, ""

        async def scrape():
            await server.start_metrics_http("127.0.0.1", 0)
            port = server._metrics_server.sockets[0].getsockname()[1]
            base = f"http://127.0.0.1:{port}"
            good = await asyncio.to_thread(get, base + "/metrics")
            missing = await asyncio.to_thread(get, base + "/nope")
            await server.aclose()
            return good, missing

        (status, headers, text), (bad_status, _, _) = asyncio.run(scrape())
        assert status == 200 and bad_status == 404
        assert headers["Content-Type"].startswith("text/plain")
        check_exposition(text)
        assert "repro_engine_admitted_streams 1" in text


class TestAssertStatsCoversGauges:
    class _FakeClient:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    class _FakeSummary:
        def __init__(self, engine):
            self.errors = 0
            self.server_stats = {"engine": engine}

        def to_dict(self):
            return {"errors": self.errors,
                    "server_stats": self.server_stats}

    def _run(self, monkeypatch, engine):
        import repro.service.loadgen as loadgen

        monkeypatch.setattr(
            loadgen.BrokerClient, "wait_for_unix",
            classmethod(lambda cls, path, timeout=0: self._FakeClient()),
        )
        monkeypatch.setattr(
            loadgen, "run_load",
            lambda client, **kw: self._FakeSummary(engine),
        )
        return main(["load", "--socket", "/tmp/fake.sock",
                     "--assert-stats"])

    def test_missing_dirty_gauges_fail(self, monkeypatch, capsys):
        code = self._run(monkeypatch, {"ops": 5})
        assert code == 1
        assert "dirty_last" in capsys.readouterr().err

    def test_full_engine_stats_pass(self, monkeypatch, capsys):
        code = self._run(monkeypatch, {
            "ops": 5, "dirty_last": 1, "dirty_max": 2, "dirty_total": 3,
        })
        assert code == 0

    def test_zero_ops_fail(self, monkeypatch, capsys):
        code = self._run(monkeypatch, {
            "ops": 0, "dirty_last": 0, "dirty_max": 0, "dirty_total": 0,
        })
        assert code == 1
        assert "stats empty" in capsys.readouterr().err
