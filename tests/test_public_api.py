"""Public API surface checks: every advertised name exists and resolves."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_root_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.topology",
            "repro.core",
            "repro.sim",
            "repro.baselines",
            "repro.rtchannel",
            "repro.analysis",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert mod.__all__, module
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_version_matches_package_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        from repro.errors import (
            AnalysisError,
            DeadlockError,
            ReproError,
            RoutingError,
            SimulationError,
            StreamError,
            TopologyError,
        )

        for exc in (TopologyError, RoutingError, StreamError,
                    AnalysisError, SimulationError):
            assert issubclass(exc, ReproError)
        assert issubclass(DeadlockError, SimulationError)

    def test_quickstart_docstring_example_runs(self):
        """The usage example in the package docstring must stay valid."""
        from repro import (
            FeasibilityAnalyzer,
            Mesh2D,
            MessageStream,
            StreamSet,
            XYRouting,
        )

        mesh = Mesh2D(10, 10)
        routing = XYRouting(mesh)
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(7, 3), mesh.node_xy(7, 7),
                          priority=5, period=150, length=4, deadline=150),
            MessageStream(1, mesh.node_xy(1, 1), mesh.node_xy(5, 4),
                          priority=4, period=100, length=2, deadline=100),
        ])
        report = FeasibilityAnalyzer(streams, routing).determine_feasibility()
        assert report.success
        assert report.upper_bounds() == {0: 7, 1: 8}

    def test_no_paper_docstring_drift(self):
        """Module docstrings that quote the paper's reconstructed constants
        must agree with the conftest fixture (guards accidental edits)."""
        from tests.conftest import PAPER_EXAMPLE, PAPER_EXAMPLE_U

        assert PAPER_EXAMPLE[0][2:] == (5, 15, 4, 15, 7)
        assert PAPER_EXAMPLE_U == {0: 7, 1: 8, 2: 26, 3: 20, 4: 33}
