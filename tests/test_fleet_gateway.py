"""HTTP gateway tests: auth, the /v1 API, health, metrics, admin
failover — round-tripped through the real asyncio server on a loopback
TCP port, driven by :class:`GatewayClient` from a worker thread (the
same harness shape as ``test_service_server.TestAsyncFrontEnd``)."""

import asyncio
import threading

import pytest

from repro.errors import ReproError
from repro.fleet.client import GatewayClient
from repro.fleet.gateway import GatewayServer
from repro.fleet.replication import StandbyPool
from repro.fleet.shards import Fleet, TenantSpec
from repro.service.loadgen import run_load

TOPO = {"type": "mesh", "width": 4, "height": 4}


def spec(src=0, dst=2, priority=5, period=300, length=4):
    return {"src": src, "dst": dst, "priority": priority, "period": period,
            "length": length, "deadline": period}


def run_gateway(client_fn, tmp_path=None, *, tenants=None, shards=2,
                standbys=None):
    """Start a gateway on a loopback port, run ``client_fn(port)`` in a
    thread, and return its result dict (plus the server under "gw")."""
    tenants = tenants or [TenantSpec("acme", "secret", TOPO)]
    result = {}

    async def main():
        fleet = Fleet(tenants, shards=shards, state_dir=tmp_path)
        pool = None
        if standbys:
            pool = StandbyPool(fleet)
        gw = GatewayServer(fleet, standbys=pool, poll_interval=0.05)
        await gw.start("127.0.0.1", 0)
        thread = threading.Thread(
            target=lambda: result.update(client_fn(gw.port))
        )
        thread.start()
        await asyncio.wait_for(gw.serve_forever(), timeout=60)
        thread.join(timeout=10)
        result["gw"] = gw

    asyncio.run(main())
    return result


def shutdown(port, api_key="secret"):
    with GatewayClient(f"127.0.0.1:{port}", api_key=api_key) as c:
        c.request("shutdown")


class TestAuth:
    def test_wrong_key_is_rejected_and_counted(self):
        def client(port):
            bad = GatewayClient(f"127.0.0.1:{port}", api_key="nope")
            with pytest.raises(ReproError, match="rejected the API key"):
                bad.request("ping")
            bad.close()
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                ping = c.check("ping")
                c.request("shutdown")
            return {"ping": ping}

        result = run_gateway(client)
        assert result["ping"]["ok"]
        assert result["gw"].auth_failures == 1

    def test_health_needs_no_key(self):
        def client(port):
            c = GatewayClient(f"127.0.0.1:{port}", api_key="whatever")
            health = c.get("/healthz")
            c.close()
            shutdown(port)
            return {"health": health}

        result = run_gateway(client)
        assert result["health"]["ok"]
        assert result["health"]["tenants"]["acme"]["shards"] == 2


class TestV1Api:
    def test_ops_round_trip(self):
        def client(port):
            out = {}
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                out["hello"] = c.check("hello")
                out["admit"] = c.check("admit", streams=[spec()])
                out["query"] = c.check(
                    "query", stream=out["admit"]["ids"][0]
                )
                out["report"] = c.check("report")
                out["release"] = c.check(
                    "release", ids=out["admit"]["ids"]
                )
                out["stats"] = c.check("stats")
                c.request("shutdown")
            return out

        result = run_gateway(client)
        assert result["hello"]["server"] == "repro-fleet"
        assert result["hello"]["tenant"] == "acme"
        assert result["admit"]["admitted"] and result["admit"]["ids"] == [0]
        assert result["query"]["stream"]["id"] == 0
        assert result["report"]["admitted"] == 1
        assert result["release"]["released"] == [0]

    def test_duplicate_rid_is_acked_once(self):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                first = c.request("admit", rid="r1", streams=[spec()])
                replay = c.request("admit", rid="r1", streams=[spec()])
                report = c.check("report")
                c.request("shutdown")
            return {"first": first, "replay": replay, "report": report}

        result = run_gateway(client)
        assert result["first"]["ok"] and not result["first"].get("duplicate")
        assert result["replay"]["ok"] and result["replay"]["duplicate"]
        assert result["replay"]["ids"] == result["first"]["ids"]
        assert result["report"]["admitted"] == 1, "rid replay double-applied"

    def test_request_with_retry_survives_reconnect(self):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                c.reconnect()  # drop + redial mid-session
                response = c.request_with_retry(
                    "admit", rid="rr1", streams=[spec()]
                )
                c.request("shutdown")
            return {"response": response}

        result = run_gateway(client)
        assert result["response"]["ok"]

    def test_unknown_path_404(self):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                missing = c.get("/nope")
                c.request("shutdown")
            return {"missing": missing}

        result = run_gateway(client)
        assert result["missing"]["ok"] is False
        assert result["gw"].requests[("/nope", 404)] == 1

    def test_run_load_drives_gateway_unchanged(self):
        """The stock churn loadgen works over HTTP via GatewayClient."""
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                summary = run_load(c, ops=40, seed=3, target_live=8)
                c.request("shutdown")
            return {"summary": summary}

        result = run_gateway(client)
        summary = result["summary"]
        assert summary.ops == 40
        assert summary.errors == 0
        assert summary.admits_accepted > 0


class TestMetrics:
    def test_prometheus_rollup_includes_gateway_counters(self):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                c.check("admit", streams=[spec()])
                text = c.get("/metrics")
                c.request("shutdown")
            return {"text": text}

        text = run_gateway(client)["text"]
        assert isinstance(text, str)
        assert 'repro_fleet_tenant_streams{tenant="acme"} 1' in text
        assert "repro_gateway_http_requests_total" in text
        assert "repro_gateway_auth_failures_total 0" in text


class TestAdmin:
    def test_kill_degrades_health_and_failover_restores(self, tmp_path):
        def client(port):
            out = {}
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                admit = c.check("admit", streams=[spec()])
                shard = None
                # Find the owning shard by killing and probing health.
                out["admit"] = admit
                kill = c.admin("kill", tenant="acme", shard=0)
                out["kill"] = kill
                out["health_down"] = c.get("/healthz")
                out["failover"] = c.admin("failover", tenant="acme",
                                          shard=0)
                out["health_up"] = c.get("/healthz")
                out["report"] = c.check("report")
                c.request("shutdown")
            return out

        result = run_gateway(client, tmp_path, standbys=True)
        assert result["kill"]["_status"] == 200
        assert result["health_down"]["ok"] is False
        assert result["health_down"]["tenants"]["acme"]["dead"] == [0]
        assert result["failover"]["_status"] == 200
        assert result["failover"]["promoted"] == 0
        assert result["health_up"]["ok"] is True
        assert result["report"]["admitted"] == 1

    def test_cross_tenant_admin_forbidden(self, tmp_path):
        tenants = [TenantSpec("acme", "k-acme", TOPO),
                   TenantSpec("beta", "k-beta", TOPO)]

        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="k-acme") as c:
                forbidden = c.admin("kill", tenant="beta", shard=0)
                c.request("shutdown")
            return {"forbidden": forbidden}

        result = run_gateway(client, tenants=tenants)
        assert result["forbidden"]["_status"] == 403
        assert "does not belong" in result["forbidden"]["error"]

    def test_failover_without_standbys_is_400(self):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                response = c.admin("failover", tenant="acme", shard=0)
                c.request("shutdown")
            return {"response": response}

        result = run_gateway(client)  # no state_dir -> no standbys
        assert result["response"]["_status"] == 400

    def test_bad_shard_is_400(self, tmp_path):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                response = c.admin("kill", tenant="acme", shard=9)
                c.request("shutdown")
            return {"response": response}

        result = run_gateway(client, tmp_path, standbys=True)
        assert result["response"]["_status"] == 400


class TestStandbyPolling:
    def test_background_poll_ships_journal(self, tmp_path):
        """The gateway's poll task replicates without any explicit
        catch_up call from the request path."""
        def client(port):
            import time

            with GatewayClient(f"127.0.0.1:{port}", api_key="secret") as c:
                c.check("admit", streams=[spec()])
                deadline = time.monotonic() + 5.0
                shipped = {}
                while time.monotonic() < deadline:
                    shipped = c.get("/healthz").get("standbys", {})
                    if any(shipped.values()):
                        break
                    time.sleep(0.05)
                c.request("shutdown")
            return {"shipped": shipped}

        result = run_gateway(client, tmp_path, standbys=True)
        assert any(result["shipped"].values()), (
            "background poller never shipped the admit"
        )
