"""The PR 6 admission fast path: every shortcut must be invisible.

Four optimisation layers ride the admission path — shared route tables,
reach-delta HP maintenance, process-pool verdict recomputation and the
adaptive-horizon diagram kernel — and each has an escape hatch. These
tests pin the only contract any of them is allowed to have: the observed
decisions and report specs are byte-identical with every combination of
knobs, including after a chaos ``cache_storm``, and the fill kernels
agree bit for bit with the paper's literal scan.
"""

import hashlib
import json
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.parallel import shutdown_verdict_pool
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.kernel import (
    active_kernel,
    fill_masks_numpy,
    fill_masks_scan,
    select_kernel,
    window_arrays,
)
from repro.core.streams import MessageStream
from repro.io import report_to_spec
from repro.service.engine import IncrementalAdmissionEngine
from repro.topology.mesh import Mesh2D
from repro.topology.route_table import (
    clear_shared_route_tables,
    shared_route_table,
)
from repro.topology.routing import XYRouting
from tests.test_properties import XY, stream_sets

MESH_W = MESH_H = 6


def fuzz_trace(seed=0, ops=220, target_live=12):
    """A deterministic admit/release churn trace on the 6x6 mesh."""
    mesh = Mesh2D(MESH_W, MESH_H)
    rng = random.Random(seed)

    def draw(sid):
        while True:
            src = rng.randrange(mesh.num_nodes)
            dst = rng.randrange(mesh.num_nodes)
            if src != dst:
                break
        period = rng.randint(40, 200)
        return MessageStream(
            sid, src, dst,
            priority=rng.randint(1, 8), period=period,
            length=rng.randint(1, 6),
            deadline=rng.randint(period // 4, period),
        )

    trace, live, next_id = [], [], 0
    for _ in range(ops):
        if live and (len(live) >= target_live or rng.random() < 0.5):
            trace.append(("release", live.pop(rng.randrange(len(live)))))
        else:
            trace.append(("admit", draw(next_id)))
            live.append(next_id)
            next_id += 1
    return trace


def replay_digest(engine, trace):
    """Replay the trace; return a SHA-256 over every decision + report."""
    h = hashlib.sha256()
    for op, payload in trace:
        if op == "admit":
            d = engine.try_admit(payload)
            h.update(json.dumps(
                ["admit", payload.stream_id, d.admitted,
                 list(d.violations), report_to_spec(d.report)],
                sort_keys=True,
            ).encode())
        elif payload in engine.admitted:
            engine.release(payload)
            h.update(json.dumps(
                ["release", payload,
                 report_to_spec(engine.current_report())],
                sort_keys=True,
            ).encode())
    return h.hexdigest()


def fresh_engine(**kwargs):
    clear_shared_route_tables()
    return IncrementalAdmissionEngine(
        XYRouting(Mesh2D(MESH_W, MESH_H)), **kwargs
    )


class TestParallelVerdictsIdentity:
    def test_pool_and_serial_reports_share_one_sha(self, monkeypatch):
        """200+ fuzzed ops: a 2-process pool forced onto every refresh
        (threshold 1) must reproduce the serial engine byte for byte."""
        monkeypatch.setenv("REPRO_ANALYSIS_THRESHOLD", "1")
        trace = fuzz_trace(seed=7)
        assert len(trace) >= 200
        try:
            parallel = replay_digest(fresh_engine(processes=2), trace)
        finally:
            shutdown_verdict_pool()
        monkeypatch.delenv("REPRO_ANALYSIS_THRESHOLD")
        serial = replay_digest(fresh_engine(processes=0), trace)
        assert parallel == serial


class TestKnobByteIdentity:
    def test_every_escape_hatch_reproduces_the_default(self):
        trace = fuzz_trace(seed=3)
        baseline = replay_digest(fresh_engine(), trace)
        for kwargs in (
            {"incremental_hp": False},   # REPRO_INCREMENTAL_HP=0
            {"incremental": False},      # full reanalysis per op
            {"processes": 0},            # REPRO_ANALYSIS_PROCS=0
        ):
            assert replay_digest(fresh_engine(**kwargs), trace) == baseline


class TestCacheStorm:
    def test_storm_recovers_bit_identical_and_rewarms(self):
        trace = fuzz_trace(seed=11, ops=120)
        engine = fresh_engine()
        for op, payload in trace:
            if op == "admit":
                engine.try_admit(payload)
            elif payload in engine.admitted:
                engine.release(payload)
        before = report_to_spec(engine.current_report())
        table = shared_route_table(engine.routing)
        assert len(table) > 0
        for _ in range(3):
            engine.invalidate_caches()
            assert report_to_spec(engine.current_report()) == before
        # The storm rebuilt routes through the cleared table.
        assert len(table) > 0
        assert engine.stats.forced_invalidations == 3


class TestKernelParity:
    def test_scan_and_numpy_agree_on_fuzzed_rows(self):
        rng = random.Random(0)
        for _ in range(300):
            dtime = rng.randint(4, 160)
            period = rng.randint(2, dtime)
            length = rng.randint(1, 6)
            busy = np.zeros(dtime + 1, dtype=bool)
            for t in range(1, dtime + 1):
                busy[t] = rng.random() < rng.choice((0.1, 0.5, 0.9))
            starts, win = window_arrays(period, dtime)
            ref = fill_masks_scan(busy.copy(), period, length, len(starts))
            got = fill_masks_numpy(busy.copy(), period, length, starts, win)
            # Cached-wstart fast path must be indistinguishable.
            cached = fill_masks_numpy(
                busy.copy(), period, length, starts, win, starts[win]
            )
            for a, b in zip(ref, got):
                np.testing.assert_array_equal(a, b)
            for a, b in zip(got, cached):
                np.testing.assert_array_equal(a, b)

    def test_numba_fallback_warns_and_stays_numpy(self):
        try:
            import numba  # noqa: F401
            pytest.skip("numba installed; fallback path not reachable")
        except ImportError:
            pass
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert select_kernel("numba") == "numpy"
            assert active_kernel() == "numpy"
        finally:
            select_kernel("numpy")


class TestAdaptiveHorizon:
    @given(streams=stream_sets(max_streams=6))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_adaptive_equals_deadline_horizon(self, streams):
        for use_modify in (True, False):
            an = FeasibilityAnalyzer(streams, XY, use_modify=use_modify)
            for s in an.streams:
                fast = an.cal_u(s.stream_id)
                slow = an.cal_u(s.stream_id, horizon=s.deadline)
                assert fast.upper_bound == slow.upper_bound
                assert fast.feasible == slow.feasible
                assert fast.horizon == s.deadline


class TestPhaseTimings:
    def test_stats_break_down_the_admission_path(self):
        trace = fuzz_trace(seed=5, ops=80)
        engine = fresh_engine()
        for op, payload in trace:
            if op == "admit":
                engine.try_admit(payload)
            elif payload in engine.admitted:
                engine.release(payload)
        st = engine.stats.to_dict()
        assert st["hp_delta_updates"] > 0
        # Full rebuilds happen only on fallback transitions (e.g. the
        # first admit into an empty set); deltas must dominate.
        assert st["hp_delta_updates"] > st["hp_rebuilt"]
        assert st["route_cache_misses"] <= len({
            (p.src, p.dst) for op, p in trace if op == "admit"
        })
        for phase in ("route_seconds", "hp_seconds",
                      "diagram_seconds", "verdict_seconds"):
            assert st[phase] >= 0.0
        assert st["verdict_seconds"] >= st["diagram_seconds"]
