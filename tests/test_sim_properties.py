"""Property-based tests of the wormhole simulator's invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.streams import MessageStream, StreamSet
from repro.sim import WormholeSimulator
from repro.topology import Mesh2D, XYRouting

MESH = Mesh2D(6, 6)
XY = XYRouting(MESH)

node_ids = st.integers(min_value=0, max_value=MESH.num_nodes - 1)


@st.composite
def sim_workloads(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    streams = StreamSet()
    for i in range(n):
        src = draw(node_ids)
        dst = draw(node_ids.filter(lambda d: d != src))
        streams.add(MessageStream(
            stream_id=i, src=src, dst=dst,
            priority=draw(st.integers(1, 3)),
            period=draw(st.integers(30, 120)),
            length=draw(st.integers(1, 12)),
            deadline=10_000,
        ))
    return streams


class TestSimulatorInvariants:
    @given(streams=sim_workloads(), until=st.integers(100, 800))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_and_floor(self, streams, until):
        sim = WormholeSimulator(MESH, XY, streams)
        stats = sim.simulate_streams(until)
        # Everything drains (deadline-free workload, preemptive network).
        assert stats.unfinished == 0
        total_flit_hops = 0
        for s in streams:
            st_ = stats.stream_stats(s.stream_id)
            hops = XY.hop_count(s.src, s.dst)
            no_load = hops + s.length - 1
            # (1) physical floor: no delay below the no-load latency;
            assert st_.minimum >= no_load
            # (2) message count matches the release schedule;
            expected = (until + s.period - 1) // s.period
            assert st_.count == expected
            total_flit_hops += expected * s.length * hops
        # (3) flit conservation: every flit crossed every route channel
        #     exactly once.
        assert sim.total_transfers == total_flit_hops
        assert sum(sim.channel_transfers.values()) == total_flit_hops

    @given(streams=sim_workloads())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_determinism(self, streams):
        runs = []
        for _ in range(2):
            sim = WormholeSimulator(MESH, XY, streams)
            stats = sim.simulate_streams(400)
            runs.append(tuple(
                (sid, stats.samples(sid)) for sid in stats.stream_ids()
            ))
        assert runs[0] == runs[1]

    @given(streams=sim_workloads())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_top_priority_unblocked_when_alone_at_level(self, streams):
        """A unique top-priority stream always measures exactly its
        no-load latency under preemptive switching."""
        top = max(s.priority for s in streams)
        top_streams = [s for s in streams if s.priority == top]
        if len(top_streams) != 1:
            return
        s = top_streams[0]
        sim = WormholeSimulator(MESH, XY, streams)
        stats = sim.simulate_streams(400)
        no_load = XY.hop_count(s.src, s.dst) + s.length - 1
        stream_stats = stats.stream_stats(s.stream_id)
        if s.period > no_load:  # no self-queueing
            assert stream_stats.maximum == no_load

    @given(streams=sim_workloads(), capacity=st.integers(2, 6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_larger_buffers_never_hurt_unloaded_floor(self, streams,
                                                      capacity):
        sim = WormholeSimulator(MESH, XY, streams, vc_capacity=capacity)
        stats = sim.simulate_streams(400)
        for s in streams:
            no_load = XY.hop_count(s.src, s.dst) + s.length - 1
            assert stats.stream_stats(s.stream_id).minimum >= no_load
