"""Link-fault survival: reroute-and-readmit vs from-scratch analysis.

The contract under test (ISSUE 10): after any fuzzed schedule of link
failures and restorations interleaved with admit/release churn, the
engine's incremental reroute-and-readmit state is **bit-identical** to a
from-scratch analysis of the surviving streams on the degraded topology
— across bound backends and seeds — and the simulator confirms that the
surviving streams actually meet their recomputed bounds. On top of the
engine, the broker host must persist the failed-link set, replay it on
recovery, and deduplicate link ops by request id.
"""

import hashlib
import json
import random

import pytest

from repro.core import backends
from repro.core.streams import MessageStream, StreamSet
from repro.errors import RoutingError, SimulationError
from repro.io import report_to_spec
from repro.service.engine import IncrementalAdmissionEngine
from repro.service.host import EngineHost
from repro.sim import WormholeSimulator
from repro.topology import (
    FaultAwareRouting,
    Mesh2D,
    XYRouting,
    normalize_link,
)


def report_sha(report) -> str:
    spec = report_to_spec(report)
    return hashlib.sha256(
        json.dumps(spec, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def rand_stream(rng, sid, nodes=25, levels=8):
    src = rng.randrange(nodes)
    dst = rng.randrange(nodes)
    while dst == src:
        dst = rng.randrange(nodes)
    period = rng.randint(60, 240)
    return MessageStream(
        sid, src, dst, priority=rng.randint(1, levels), period=period,
        length=rng.randint(1, 5), deadline=rng.randint(period // 2, period),
    )


class TestEngineDifferential:
    """Fuzzed fail/restore schedules, engine vs from-scratch."""

    @pytest.mark.parametrize("backend", ["kim98", "tighter"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reroute_matches_from_scratch(self, seed, backend):
        rng = random.Random(seed)
        mesh = Mesh2D(5, 5)
        base = XYRouting(mesh)
        pool = sorted({normalize_link(u, v) for u, v in mesh.channels()})
        eng = IncrementalAdmissionEngine(base, analysis=backend)
        failed = []
        link_events = 0

        def check_against_scratch():
            if not len(eng.admitted):
                return
            streams = StreamSet(sorted(
                eng.admitted, key=lambda s: s.stream_id
            ))
            scratch = backends.get(backend).analyzer(
                streams, eng.routing
            ).determine_feasibility()
            assert report_sha(eng.current_report()) == report_sha(scratch)

        for _ in range(60):
            roll = rng.random()
            if roll < 0.18:
                if failed and (len(failed) >= 3 or rng.random() < 0.4):
                    failed.pop(rng.randrange(len(failed)))
                else:
                    up = [l for l in pool if l not in failed]
                    failed.append(up[rng.randrange(len(up))])
                routing = (FaultAwareRouting(base, sorted(failed))
                           if failed else base)
                delta = eng.apply_routing(routing)
                link_events += 1
                # Every evicted id really left; every survivor stayed.
                admitted_ids = {s.stream_id for s in eng.admitted}
                assert admitted_ids == set(delta.survivors)
                assert not admitted_ids & set(delta.evicted)
                check_against_scratch()
            elif roll < 0.70 or not len(eng.admitted):
                stream = rand_stream(rng, eng.fresh_id())
                try:
                    eng.try_admit(stream)
                except RoutingError:
                    # Pair disconnected by the current failed set.
                    assert failed
            else:
                ids = sorted(s.stream_id for s in eng.admitted)
                eng.release(ids[rng.randrange(len(ids))])
        assert link_events >= 3, "schedule never exercised a link op"
        check_against_scratch()

        # The surviving streams must meet their recomputed bounds on the
        # *degraded* network, not just on paper: simulate and compare.
        report = eng.current_report()
        survivors = sorted(eng.admitted, key=lambda s: s.stream_id)
        if not report.success or not survivors:
            return
        topo = eng.routing.topology if failed else mesh
        sim = WormholeSimulator(topo, eng.routing, StreamSet(survivors))
        stats = sim.simulate_streams(2000)
        bounds = report.upper_bounds()
        for stream in survivors:
            samples = stats.samples(stream.stream_id)
            if samples:
                assert max(samples) <= bounds[stream.stream_id]


class TestHostLinkOps:
    """Broker-level fail/restore: protocol, persistence, idempotency."""

    SPEC = {"type": "mesh", "width": 4, "height": 4}

    @staticmethod
    def _admit(host, specs):
        response = host.handle_request({"op": "admit", "streams": specs})
        assert response["ok"] and response["admitted"], response
        return response["ids"]

    def test_fail_link_reroutes_and_reports_delta(self):
        host = EngineHost(self.SPEC)
        # 0 -> 3 crosses links (0,1), (1,2), (2,3) under X-Y routing.
        (sid,) = self._admit(
            host,
            [{"src": 0, "dst": 3, "priority": 1, "period": 100,
              "length": 2, "deadline": 100}],
        )
        response = host.handle_request(
            {"op": "fail_link", "link": [1, 2]}
        )
        assert response["ok"]
        assert response["failed_links"] == [[1, 2]]
        assert sid in response["rerouted"] + response["evicted"]
        links = host.handle_request({"op": "links"})
        assert links["ok"] and links["failed_links"] == [[1, 2]]
        assert links["routing"] == "FaultAwareRouting"

        restore = host.handle_request(
            {"op": "restore_link", "link": [2, 1]}
        )
        assert restore["ok"] and restore["failed_links"] == []
        assert host.handle_request({"op": "links"})["routing"] != \
            "FaultAwareRouting"

    def test_validation_errors(self):
        host = EngineHost(self.SPEC)
        bad = host.handle_request({"op": "fail_link", "link": [0, 5]})
        assert not bad["ok"] and "no physical link" in bad["error"]
        assert host.handle_request(
            {"op": "fail_link", "link": [0]}
        )["ok"] is False
        ok = host.handle_request({"op": "fail_link", "link": [0, 1]})
        assert ok["ok"]
        dup = host.handle_request({"op": "fail_link", "link": [1, 0]})
        assert not dup["ok"] and "already failed" in dup["error"]
        missing = host.handle_request(
            {"op": "restore_link", "link": [2, 3]}
        )
        assert not missing["ok"] and "not failed" in missing["error"]

    def test_rid_dedupe_returns_recorded_outcome(self):
        host = EngineHost(self.SPEC)
        first = host.handle_request(
            {"op": "fail_link", "link": [0, 1], "rid": "r1"}
        )
        assert first["ok"] and not first.get("duplicate")
        again = host.handle_request(
            {"op": "fail_link", "link": [0, 1], "rid": "r1"}
        )
        assert again["ok"] and again.get("duplicate")
        assert again["link"] == first["link"]
        assert again["evicted"] == first["evicted"]
        # A *different* rid for the same link is a genuine second fail.
        other = host.handle_request(
            {"op": "fail_link", "link": [0, 1], "rid": "r2"}
        )
        assert not other["ok"] and "already failed" in other["error"]

    def test_failed_links_survive_recovery(self, tmp_path):
        host = EngineHost(self.SPEC, state_dir=tmp_path)
        self._admit(host, [
            {"src": 0, "dst": 15, "priority": 2, "period": 200,
             "length": 3, "deadline": 200},
            {"src": 12, "dst": 3, "priority": 1, "period": 150,
             "length": 2, "deadline": 150},
        ])
        assert host.handle_request(
            {"op": "fail_link", "link": [5, 6]}
        )["ok"]
        assert host.handle_request(
            {"op": "fail_link", "link": [9, 10]}
        )["ok"]
        assert host.handle_request(
            {"op": "restore_link", "link": [5, 6]}
        )["ok"]
        sha, spec = host.fingerprint()
        assert spec["failed_links"] == [[9, 10]]
        host.state.close()

        recovered = EngineHost(self.SPEC, state_dir=tmp_path)
        assert recovered.links_spec() == [[9, 10]]
        assert recovered.fingerprint()[0] == sha
        recovered.state.close()

    def test_recovery_after_snapshot_compaction(self, tmp_path):
        host = EngineHost(self.SPEC, state_dir=tmp_path)
        assert host.handle_request(
            {"op": "fail_link", "link": [0, 4]}
        )["ok"]
        assert host.handle_request({"op": "snapshot"})["ok"]
        assert host.handle_request(
            {"op": "fail_link", "link": [8, 9]}
        )["ok"]
        sha = host.fingerprint()[0]
        host.state.close()
        recovered = EngineHost(self.SPEC, state_dir=tmp_path)
        assert recovered.links_spec() == [[0, 4], [8, 9]]
        assert recovered.fingerprint()[0] == sha
        recovered.state.close()


class TestSimulatorLinkFaults:
    """Flit-level behaviour: dead links kill crossing worms."""

    @staticmethod
    def _sim(streams, failed=()):
        mesh = Mesh2D(4, 4)
        routing = FaultAwareRouting(XYRouting(mesh), failed)
        return WormholeSimulator(
            routing.topology, routing, StreamSet(streams)
        )

    def test_fail_link_drops_crossing_worm(self):
        crossing = MessageStream(0, 0, 3, priority=1, period=1000,
                                 length=8, deadline=1000)
        clear = MessageStream(1, 12, 15, priority=1, period=1000,
                              length=8, deadline=1000)
        sim = self._sim([crossing, clear])
        sim.release_message(crossing, 0)
        sim.release_message(clear, 0)
        sim.run(3)  # both worms mid-flight
        victims = sim.fail_link(1, 2)
        assert victims == [0]
        assert sim.link_drops == 1
        assert sim.failed_links == frozenset({(1, 2)})
        sim.run(60)
        # The untouched worm finishes; the dead one never delivers.
        assert list(sim.stats._samples.get(1, ())) != []
        assert not sim.stats._samples.get(0)

    def test_injection_blocked_while_down_and_resumes_after_restore(self):
        stream = MessageStream(0, 0, 3, priority=1, period=50,
                               length=2, deadline=50)
        sim = self._sim([stream])
        sim.fail_link(2, 3)
        sim.release_message(stream, 0)
        sim.run(30)
        assert sim.link_drops == 1
        assert not sim.stats._samples.get(0)
        sim.restore_link(2, 3)
        assert sim.failed_links == frozenset()
        sim.release_message(stream, 50)
        sim.run(100)
        assert list(sim.stats._samples.get(0, ())) != []

    def test_reroute_after_failure_delivers(self):
        stream = MessageStream(0, 0, 3, priority=1, period=100,
                               length=2, deadline=100)
        mesh = Mesh2D(4, 4)
        base = XYRouting(mesh)
        sim = self._sim([stream])
        sim.fail_link(1, 2)
        sim.set_routing(FaultAwareRouting(base, [(1, 2)]))
        sim.release_message(stream, 0)
        sim.run(100)
        assert list(sim.stats._samples.get(0, ())) != []

    def test_fail_link_validation(self):
        sim = self._sim([MessageStream(0, 0, 1, priority=1, period=100,
                                       length=1, deadline=100)])
        with pytest.raises(SimulationError):
            sim.fail_link(0, 9)  # not a physical link
        sim.fail_link(0, 1)
        with pytest.raises(SimulationError):
            sim.fail_link(1, 0)  # already failed
        with pytest.raises(SimulationError):
            sim.restore_link(2, 3)  # never failed

    def test_set_routing_rejects_vc_class_mismatch(self):
        mesh = Mesh2D(4, 4)
        sim = self._sim([MessageStream(0, 0, 1, priority=1, period=100,
                                       length=1, deadline=100)])
        with pytest.raises(SimulationError):
            sim.set_routing(XYRouting(mesh))  # 1 class vs provisioned 2
