"""Unit tests for structured traffic patterns (repro.sim.traffic)."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    PatternWorkload,
    WormholeSimulator,
    bit_reversal_pattern,
    hotspot_pattern,
    transpose_pattern,
)
from repro.topology import Hypercube, Mesh2D, XYRouting, ECubeRouting


class TestTransposePattern:
    def test_maps_xy_to_yx(self):
        mesh = Mesh2D(4, 4)
        pat = transpose_pattern(mesh)
        assert pat[mesh.node_xy(1, 3)] == mesh.node_xy(3, 1)
        assert pat[mesh.node_xy(0, 2)] == mesh.node_xy(2, 0)

    def test_diagonal_omitted(self):
        mesh = Mesh2D(4, 4)
        pat = transpose_pattern(mesh)
        for d in range(4):
            assert mesh.node_xy(d, d) not in pat
        assert len(pat) == 16 - 4

    def test_involution(self):
        mesh = Mesh2D(5, 5)
        pat = transpose_pattern(mesh)
        for src, dst in pat.items():
            assert pat[dst] == src

    def test_requires_square_mesh(self):
        with pytest.raises(SimulationError):
            transpose_pattern(Mesh2D(4, 5))
        with pytest.raises(SimulationError):
            transpose_pattern(Hypercube(4))


class TestBitReversalPattern:
    def test_hypercube_reversal(self):
        cube = Hypercube(4)
        pat = bit_reversal_pattern(cube)
        assert pat[0b0001] == 0b1000
        assert pat[0b0011] == 0b1100
        assert 0b0000 not in pat     # palindrome addresses omitted
        assert 0b1001 not in pat

    def test_involution(self):
        cube = Hypercube(5)
        pat = bit_reversal_pattern(cube)
        for src, dst in pat.items():
            assert pat[dst] == src

    def test_requires_power_of_two(self):
        with pytest.raises(SimulationError):
            bit_reversal_pattern(Mesh2D(3, 4))


class TestHotspotPattern:
    def test_all_to_one(self):
        mesh = Mesh2D(3, 3)
        pat = hotspot_pattern(mesh, hotspot=4)
        assert len(pat) == 8
        assert set(pat.values()) == {4}
        assert 4 not in pat

    def test_sampled_sources(self):
        mesh = Mesh2D(5, 5)
        pat = hotspot_pattern(mesh, hotspot=0, num_sources=6, seed=1)
        assert len(pat) == 6
        assert all(dst == 0 for dst in pat.values())

    def test_sample_bounds(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(SimulationError):
            hotspot_pattern(mesh, hotspot=0, num_sources=9)
        with pytest.raises(SimulationError):
            hotspot_pattern(mesh, hotspot=0, num_sources=0)

    def test_invalid_hotspot(self):
        mesh = Mesh2D(3, 3)
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            hotspot_pattern(mesh, hotspot=99)


class TestPatternWorkload:
    def test_generates_all_pairs(self):
        mesh = Mesh2D(4, 4)
        wl = PatternWorkload(transpose_pattern(mesh), priority_levels=3,
                             seed=0)
        streams = wl.generate(mesh)
        assert len(streams) == 12
        srcs = {s.src for s in streams}
        assert srcs == set(transpose_pattern(mesh))
        for s in streams:
            assert 400 <= s.period <= 900
            assert 1 <= s.priority <= 3

    def test_deterministic_ids_by_source(self):
        mesh = Mesh2D(4, 4)
        wl = PatternWorkload(transpose_pattern(mesh), seed=0)
        a = wl.generate(mesh)
        b = PatternWorkload(transpose_pattern(mesh), seed=0).generate(mesh)
        assert [s.as_tuple() for s in a] == [s.as_tuple() for s in b]

    def test_empty_pattern_rejected(self):
        with pytest.raises(SimulationError):
            PatternWorkload({})

    def test_self_loop_rejected(self):
        with pytest.raises(SimulationError):
            PatternWorkload({3: 3})

    def test_end_to_end_transpose_simulation(self):
        mesh = Mesh2D(6, 6)
        rt = XYRouting(mesh)
        wl = PatternWorkload(transpose_pattern(mesh), priority_levels=4,
                             period_range=(300, 600), seed=2)
        streams = wl.generate(mesh)
        sim = WormholeSimulator(mesh, rt, streams, warmup=500)
        stats = sim.simulate_streams(6_000)
        assert stats.unfinished == 0
        assert len(stats.stream_ids()) == len(streams)

    def test_end_to_end_bit_reversal_on_hypercube(self):
        cube = Hypercube(4)
        rt = ECubeRouting(cube)
        wl = PatternWorkload(bit_reversal_pattern(cube), priority_levels=2,
                             period_range=(200, 400), seed=3)
        streams = wl.generate(cube)
        sim = WormholeSimulator(cube, rt, streams, warmup=500)
        stats = sim.simulate_streams(5_000)
        assert stats.unfinished == 0
