"""Trace-driven load generation (``repro load --trace/--pattern``).

Traces are the replayable form of a load run: a seeded generator emits a
byte-identical op list forever, the runner maps trace handles onto
whatever ids a live broker assigns, and link fail/restore events ride the
same stream as admit/release churn. The CLI round-trip (generate, save,
replay from disk with ``--assert-stats``) is the golden-trace check the
CI smoke job leans on.
"""

import json
import random
import threading

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.service.loadgen import (
    generate_trace,
    load_trace,
    run_trace,
    save_trace,
)
from repro.service.server import BrokerServer
from repro.topology import Mesh2D, normalize_link


def mesh_links(width, height):
    mesh = Mesh2D(width, height)
    return sorted({normalize_link(u, v) for u, v in mesh.channels()})


class InProcClient:
    """The slice of BrokerClient run_trace needs, minus the socket."""

    def __init__(self, server):
        self.server = server

    def request(self, op, **fields):
        return self.server.handle_request({"op": op, **fields})


class TestGenerate:
    @pytest.mark.parametrize("pattern", ["bursty", "diurnal"])
    def test_same_seed_same_bytes(self, pattern, tmp_path):
        links = mesh_links(4, 4)
        kwargs = dict(ops=150, target_live=10, links=links, link_rate=0.1)
        first = generate_trace(pattern, random.Random(42), 16, **kwargs)
        second = generate_trace(pattern, random.Random(42), 16, **kwargs)
        assert first == second
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        save_trace(a, first)
        save_trace(b, second)
        assert a.read_bytes() == b.read_bytes()
        assert load_trace(a) == first

    def test_different_seeds_differ(self):
        a = generate_trace("bursty", random.Random(0), 16, ops=60)
        b = generate_trace("bursty", random.Random(1), 16, ops=60)
        assert a != b

    def test_unknown_pattern_raises(self):
        with pytest.raises(ReproError, match="bursty"):
            generate_trace("square-wave", random.Random(0), 16)

    def test_handles_are_sequential_and_released_once(self):
        trace = generate_trace("diurnal", random.Random(5), 16,
                               ops=200, target_live=12)
        next_handle = 0
        released = set()
        for op in trace:
            if op["op"] == "admit":
                next_handle += len(op["streams"])
            elif op["op"] == "release":
                for ref in op["refs"]:
                    assert 0 <= ref < next_handle
                    assert ref not in released
                    released.add(ref)
        assert next_handle > 0 and released

    def test_link_events_only_with_links_and_rate(self):
        quiet = generate_trace("bursty", random.Random(3), 16, ops=80)
        assert all(op["op"] in ("admit", "release") for op in quiet)
        noisy = generate_trace("bursty", random.Random(3), 16, ops=80,
                               links=mesh_links(4, 4), link_rate=0.3)
        kinds = {op["op"] for op in noisy}
        assert "fail_link" in kinds
        # Every event names a real link and fail/restore alternate legally.
        down = set()
        pool = set(mesh_links(4, 4))
        for op in noisy:
            if op["op"] == "fail_link":
                link = tuple(op["link"])
                assert link in pool and link not in down
                down.add(link)
            elif op["op"] == "restore_link":
                link = tuple(op["link"])
                assert link in down
                down.remove(link)

    def test_load_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("{not json\n")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_trace(bad)
        bad.write_text('{"no_op_key": 1}\n')
        with pytest.raises(ReproError, match="'op' key"):
            load_trace(bad)
        ok = tmp_path / "ok.trace"
        ok.write_text('# comment\n\n{"op":"admit","streams":[]}\n')
        assert load_trace(ok) == [{"op": "admit", "streams": []}]


class TestRunTrace:
    SPEC = {"type": "mesh", "width": 4, "height": 4}

    def _summary_core(self, summary):
        d = summary.to_dict()
        return {k: d[k] for k in ("ops", "admits_tried", "admits_accepted",
                                  "releases", "link_ops", "errors",
                                  "live_at_end")}

    def test_replay_is_deterministic_across_brokers(self):
        trace = generate_trace("bursty", random.Random(9), 16,
                               ops=100, target_live=10,
                               links=mesh_links(4, 4), link_rate=0.08)
        runs = [
            run_trace(InProcClient(BrokerServer(self.SPEC)), trace)
            for _ in range(2)
        ]
        assert self._summary_core(runs[0]) == self._summary_core(runs[1])
        assert runs[0].errors == 0
        assert (runs[0].server_stats["admitted"]
                == runs[1].server_stats["admitted"])

    def test_evicted_handles_are_skipped_by_later_releases(self):
        trace = [
            {"op": "admit", "streams": [
                {"src": 0, "dst": 3, "priority": 1, "period": 100,
                 "length": 2, "deadline": 100},
            ]},
            {"op": "fail_link", "link": [2, 3]},
            {"op": "fail_link", "link": [3, 7]},  # node 3 now cut off
            {"op": "release", "refs": [0]},       # must be skipped
        ]
        summary = run_trace(InProcClient(BrokerServer(self.SPEC)), trace)
        assert summary.errors == 0
        assert summary.admits_accepted == 1
        assert summary.link_ops == 2
        assert summary.releases == 0  # the handle was already evicted
        assert summary.live_at_end == 0

    def test_rejected_admit_leaves_dead_handles(self):
        hog = {"src": 0, "dst": 3, "priority": 1, "period": 4,
               "length": 4, "deadline": 4}
        trace = [
            {"op": "admit", "streams": [hog]},
            {"op": "admit", "streams": [hog | {"priority": 2}] * 8},
            {"op": "release", "refs": [1, 2, 3]},
        ]
        summary = run_trace(InProcClient(BrokerServer(self.SPEC)), trace)
        # Whatever the second admit decided, refs only release live ids.
        assert summary.errors == 0
        assert summary.admits_tried == 2

    def test_unknown_op_raises(self):
        with pytest.raises(ReproError, match="unknown trace op"):
            run_trace(InProcClient(BrokerServer(self.SPEC)),
                      [{"op": "explode"}])


class TestTraceCLI:
    def _serve_and_load(self, tmp_path, load_args, name="broker.sock"):
        sock = str(tmp_path / name)
        codes = {}
        server = threading.Thread(
            target=lambda: codes.update(
                serve=main(["serve", "--socket", sock, "--mesh", "5x5"])
            )
        )
        server.start()
        code = main(["load", "--socket", sock, *load_args, "--shutdown"])
        server.join(timeout=30)
        assert codes.get("serve") == 0
        return code

    def test_golden_trace_round_trip(self, tmp_path, capsys):
        golden = tmp_path / "golden.trace"
        code = self._serve_and_load(tmp_path, [
            "--pattern", "bursty", "--seed", "12", "--ops", "60",
            "--target-live", "8", "--link-rate", "0.1",
            "--save-trace", str(golden), "--assert-stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        first = json.loads(out[out.index("{"):])
        assert first["ops"] == 60 and first["errors"] == 0
        assert first["link_ops"] > 0

        # Replay the saved trace against a *fresh* broker: same workload.
        code = self._serve_and_load(
            tmp_path,
            ["--trace", str(golden), "--assert-stats"],
            name="replay.sock",
        )
        assert code == 0
        out = capsys.readouterr().out
        second = json.loads(out[out.index("{"):])
        for key in ("ops", "admits_tried", "admits_accepted", "releases",
                    "link_ops", "errors", "live_at_end"):
            assert second[key] == first[key], key

    def test_trace_and_pattern_are_mutually_exclusive(self, capsys):
        assert main(["load", "--socket", "/tmp/x.sock",
                     "--trace", "t", "--pattern", "bursty"]) == 2
        assert ("at most one of --trace and --pattern"
                in capsys.readouterr().err)
