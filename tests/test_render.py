"""Unit tests for ASCII rendering (repro.core.render)."""

import pytest

from repro.core.bdg import build_bdg
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import HPEntry, HPSet
from repro.core.render import CELL_CHARS, render_bdg, render_diagram, render_hp_set
from repro.core.streams import MessageStream
from repro.core.timing_diagram import CellState, generate_init_diagram


def ms(i, priority, period, length):
    return MessageStream(i, 0, 1, priority=priority, period=period,
                         length=length, deadline=period)


class TestRenderDiagram:
    @pytest.fixture()
    def diagram(self):
        rows = (ms(1, 3, 10, 2), ms(2, 2, 15, 3))
        return generate_init_diagram(9, rows, dtime=20)

    def test_contains_row_labels_and_legend(self, diagram):
        out = render_diagram(diagram)
        assert "M1" in out and "M2" in out and "result" in out
        assert "legend:" in out

    def test_row_width_equals_dtime(self, diagram):
        out = render_diagram(diagram)
        rows = [l for l in out.splitlines() if l.strip().startswith("M")]
        label_width = rows[0].index("X")  # M1 allocates slot 1
        for line in rows:
            assert len(line) - label_width == 20

    def test_cell_characters(self, diagram):
        out = render_diagram(diagram)
        m1_line = next(l for l in out.splitlines() if l.startswith("M1"))
        cells = m1_line[-20:]
        assert cells[0] == CELL_CHARS[int(CellState.ALLOCATED)]
        assert cells[2] == CELL_CHARS[int(CellState.FREE)]
        m2_line = next(l for l in out.splitlines() if l.startswith("M2"))
        assert m2_line[-20:][0] == CELL_CHARS[int(CellState.WAITING)]

    def test_upper_bound_marker(self, diagram):
        u = diagram.upper_bound(3)
        out = render_diagram(diagram, upper_bound=u)
        assert f"U = {u}" in out
        marker_line = next(l for l in out.splitlines() if "^" in l)
        result_line = next(l for l in out.splitlines()
                           if l.startswith("result"))
        # The caret sits under a FREE result cell.
        col = marker_line.index("^")
        assert result_line[col] == CELL_CHARS[int(CellState.FREE)]

    def test_no_marker_for_unbounded(self, diagram):
        out = render_diagram(diagram, upper_bound=-1)
        assert "^" not in out


class TestRenderHPSet:
    def test_direct_and_indirect(self):
        hp = HPSet(4, [HPEntry.direct(2), HPEntry.indirect(0, [2, 3])])
        out = render_hp_set(hp)
        assert out.startswith("HP_4")
        assert "(2, DIRECT" in out
        assert "(0, INDIRECT, (2, 3))" in out

    def test_empty(self):
        assert "HP_7" in render_hp_set(HPSet(7))


class TestRenderBDG:
    def test_layers_and_edges(self, paper_streams, xy10):
        an = FeasibilityAnalyzer(paper_streams, xy10)
        g = build_bdg(an.hp_sets[4], an.blockers)
        out = render_bdg(g, 4)
        assert "depth 0: M4" in out
        assert "depth 1: M2  M3" in out
        assert "M4 -> M2" in out
        assert "M2 -> M0" in out
