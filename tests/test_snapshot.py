"""Unit tests for worm-state snapshots (repro.sim.snapshot)."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.sim import WormholeSimulator, render_worm_snapshot
from repro.topology import Hypercube, ECubeRouting, Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


class TestWormSnapshot:
    def test_empty_network(self, net):
        mesh, rt = net
        s = StreamSet([MessageStream(0, mesh.node_xy(0, 0),
                                     mesh.node_xy(3, 0), priority=1,
                                     period=100, length=4, deadline=100)])
        sim = WormholeSimulator(mesh, rt, s)
        out = render_worm_snapshot(sim)
        assert "0 worm(s) in flight" in out

    def test_mid_flight_occupancy(self, net):
        mesh, rt = net
        s = StreamSet([MessageStream(0, mesh.node_xy(0, 0),
                                     mesh.node_xy(5, 0), priority=2,
                                     period=1000, length=10,
                                     deadline=1000)])
        sim = WormholeSimulator(mesh, rt, s)
        sim.release_message(s[0], 0)
        sim.run(3)  # header three hops in, body stretched behind
        out = render_worm_snapshot(sim)
        assert "1 worm(s) in flight" in out
        assert "stream 0 (P2) 10 flits (0,0)->(5,0)" in out
        assert "src[inj" in out
        assert "delivered 0/10" in out

    def test_source_queue_visible(self, net):
        mesh, rt = net
        s = StreamSet([MessageStream(0, mesh.node_xy(0, 0),
                                     mesh.node_xy(2, 0), priority=1,
                                     period=5, length=20, deadline=1000)])
        sim = WormholeSimulator(mesh, rt, s)
        for t in (0, 5, 10):
            sim.release_message(s[0], t)
        sim.run(12)
        out = render_worm_snapshot(sim)
        assert "queue" in out

    def test_delivery_progress(self, net):
        mesh, rt = net
        s = StreamSet([MessageStream(0, mesh.node_xy(0, 0),
                                     mesh.node_xy(2, 0), priority=1,
                                     period=1000, length=10,
                                     deadline=1000)])
        sim = WormholeSimulator(mesh, rt, s)
        sim.release_message(s[0], 0)
        sim.run(6)
        out = render_worm_snapshot(sim)
        # Header arrived at t=2; four more flits by t=6.
        assert "delivered 5/10" in out

    def test_non_mesh_node_names(self):
        cube = Hypercube(3)
        rt = ECubeRouting(cube)
        s = StreamSet([MessageStream(0, 0, 7, priority=1, period=100,
                                     length=6, deadline=100)])
        sim = WormholeSimulator(cube, rt, s)
        sim.release_message(s[0], 0)
        sim.run(2)
        out = render_worm_snapshot(sim)
        assert "n0->n7" in out
