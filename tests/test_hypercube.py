"""Unit tests for hypercube topology (repro.topology.hypercube)."""

import pytest

from repro.errors import TopologyError
from repro.topology import Hypercube


class TestHypercube:
    def test_sizes(self):
        assert Hypercube(0).num_nodes == 1
        assert Hypercube(3).num_nodes == 8
        assert Hypercube(6).num_nodes == 64

    def test_rejects_bad_dimension(self):
        with pytest.raises(TopologyError):
            Hypercube(-1)
        with pytest.raises(TopologyError):
            Hypercube(25)

    def test_neighbors_differ_one_bit(self):
        h = Hypercube(4)
        for u in h.nodes():
            for v in h.neighbors(u):
                assert bin(u ^ v).count("1") == 1

    def test_degree_is_dimension(self):
        h = Hypercube(5)
        for n in h.nodes():
            assert h.degree(n) == 5

    def test_coords_are_bits_lsb_first(self):
        h = Hypercube(3)
        assert h.coords(0b101) == (1, 0, 1)
        assert h.node_at((1, 0, 1)) == 0b101

    def test_node_at_rejects_non_bits(self):
        h = Hypercube(3)
        with pytest.raises(TopologyError):
            h.node_at((2, 0, 0))
        with pytest.raises(TopologyError):
            h.node_at((1, 1))

    def test_hop_distance_is_hamming(self):
        h = Hypercube(4)
        assert h.hop_distance(0b0000, 0b1111) == 4
        assert h.hop_distance(0b1010, 0b1010) == 0
        assert h.hop_distance(0b1010, 0b1000) == 1

    def test_channel_count(self):
        h = Hypercube(4)
        assert h.num_channels() == 16 * 4
