"""Fleet-wide link faults: broadcast, merge, migration, recovery.

A link failure is a *global* event — every shard of a tenant must swap to
the same fault-aware routing or verdicts diverge between shards. These
tests pin the fleet semantics: merged deltas equal one engine holding
the whole tenant, components that the new routing fuses migrate onto one
shard, rids deduplicate across the broadcast, and the failed-link set is
reconciled across shard journals at recovery (including shards a crash
left behind).
"""

import pytest

from repro.fleet.shards import TenantFleet
from repro.service.host import EngineHost

TOPO = {"type": "mesh", "width": 6, "height": 6}


def spec(src, dst, *, priority=5, period=300, length=4, deadline=300,
         **extra):
    out = {"src": src, "dst": dst, "priority": priority, "period": period,
           "length": length, "deadline": deadline}
    out.update(extra)
    return out


def admit(fleet, *streams, **kw):
    return fleet.handle_request(
        {"op": "admit", "streams": list(streams), **kw}
    )


def reference(*requests):
    """One engine executing the same logical op sequence."""
    host = EngineHost(TOPO)
    for request in requests:
        response = host.handle_request(request)
        assert response["ok"], response
    return host


class TestFleetLinkOps:
    def test_fail_link_matches_single_engine(self):
        tf = TenantFleet("t", TOPO, shards=2)
        assert admit(tf, spec(0, 2))["ok"]
        assert admit(tf, spec(30, 32))["ok"]
        response = tf.handle_request({"op": "fail_link", "link": [1, 2]})
        assert response["ok"]
        assert response["failed_links"] == [[1, 2]]
        assert tf.links_spec() == [[1, 2]]
        # Every live shard swapped to the same fault-aware routing.
        for host in tf.hosts:
            assert host.links_spec() == [[1, 2]]
        ref = reference(
            {"op": "admit", "streams": [spec(0, 2)]},
            {"op": "admit", "streams": [spec(30, 32)]},
            {"op": "fail_link", "link": [1, 2]},
        )
        assert tf.fingerprint() == ref.fingerprint()
        tf.close()

    def test_disconnection_evicts_across_shards(self):
        tf = TenantFleet("t", TOPO, shards=2)
        sid = admit(tf, spec(0, 2))["ids"][0]
        assert admit(tf, spec(30, 32))["ok"]
        assert tf.handle_request(
            {"op": "fail_link", "link": [0, 1]}
        )["ok"]
        response = tf.handle_request({"op": "fail_link", "link": [0, 6]})
        assert response["ok"]
        assert sid in response["evicted"]
        assert sid in response["disconnected"]
        assert sid not in tf.owner
        ref = reference(
            {"op": "admit", "streams": [spec(0, 2)]},
            {"op": "admit", "streams": [spec(30, 32)]},
            {"op": "fail_link", "link": [0, 1]},
            {"op": "fail_link", "link": [0, 6]},
        )
        assert tf.fingerprint() == ref.fingerprint()
        tf.close()

    def test_restore_round_trip(self):
        tf = TenantFleet("t", TOPO, shards=2)
        assert admit(tf, spec(0, 5))["ok"]
        assert tf.handle_request(
            {"op": "fail_link", "link": [2, 3]}
        )["ok"]
        restore = tf.handle_request(
            {"op": "restore_link", "link": [3, 2]}
        )
        assert restore["ok"] and restore["failed_links"] == []
        assert type(tf.routing).__name__ != "FaultAwareRouting"
        ref = reference(
            {"op": "admit", "streams": [spec(0, 5)]},
            {"op": "fail_link", "link": [2, 3]},
            {"op": "restore_link", "link": [2, 3]},
        )
        assert tf.fingerprint() == ref.fingerprint()
        tf.close()

    def test_rid_dedupes_across_fleet(self):
        tf = TenantFleet("t", TOPO, shards=2)
        assert admit(tf, spec(0, 2))["ok"]
        first = tf.handle_request(
            {"op": "fail_link", "link": [1, 2], "rid": "L1"}
        )
        assert first["ok"] and not first.get("duplicate")
        again = tf.handle_request(
            {"op": "fail_link", "link": [1, 2], "rid": "L1"}
        )
        assert again["ok"] and again.get("duplicate")
        assert again["evicted"] == first["evicted"]
        assert tf.links_spec() == [[1, 2]]
        tf.close()

    def test_validation_mirrors_host(self):
        tf = TenantFleet("t", TOPO, shards=2)
        bad = tf.handle_request({"op": "fail_link", "link": [0, 35]})
        assert not bad["ok"]
        assert tf.handle_request(
            {"op": "fail_link", "link": [0, 1]}
        )["ok"]
        dup = tf.handle_request({"op": "fail_link", "link": [1, 0]})
        assert not dup["ok"]
        missing = tf.handle_request(
            {"op": "restore_link", "link": [4, 5]}
        )
        assert not missing["ok"]
        tf.close()

    def test_links_op_reports_state(self):
        tf = TenantFleet("t", TOPO, shards=2)
        links = tf.handle_request({"op": "links"})
        assert links["ok"] and links["failed_links"] == []
        assert tf.handle_request(
            {"op": "fail_link", "link": [7, 8]}
        )["ok"]
        links = tf.handle_request({"op": "links"})
        assert links["failed_links"] == [[7, 8]]
        assert links["routing"] == "FaultAwareRouting"
        tf.close()


class TestFleetLinkRecovery:
    def test_failed_links_survive_fleet_recovery(self, tmp_path):
        tf = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert admit(tf, spec(0, 2))["ok"]
        assert admit(tf, spec(30, 32))["ok"]
        assert tf.handle_request(
            {"op": "fail_link", "link": [1, 2]}
        )["ok"]
        sha, fleet_spec = tf.fingerprint()
        assert fleet_spec["failed_links"] == [[1, 2]]
        tf.close()

        recovered = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert recovered.links_spec() == [[1, 2]]
        assert recovered.fingerprint()[0] == sha
        recovered.close()

    def test_lagging_shard_is_reconciled(self, tmp_path):
        """A crash mid-broadcast leaves the link journaled on only some
        shards; recovery re-applies it as the union across journals."""
        tf = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert admit(tf, spec(0, 2))["ok"]
        assert admit(tf, spec(30, 32))["ok"]
        # Forge the torn broadcast: one shard journals the failure, the
        # fleet (and the other shard) never hears about it.
        assert tf.hosts[0].handle_request(
            {"op": "fail_link", "link": [13, 14]}
        )["ok"]
        tf.close()

        recovered = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert recovered.links_spec() == [[13, 14]]
        for host in recovered.hosts:
            assert host.links_spec() == [[13, 14]]
        ref = reference(
            {"op": "admit", "streams": [spec(0, 2)]},
            {"op": "admit", "streams": [spec(30, 32)]},
            {"op": "fail_link", "link": [13, 14]},
        )
        assert recovered.fingerprint() == ref.fingerprint()
        recovered.close()

    def test_link_op_on_dead_shard_fails_clearly(self):
        tf = TenantFleet("t", TOPO, shards=2)
        assert admit(tf, spec(0, 2))["ok"]
        tf.kill_host(0)
        response = tf.handle_request({"op": "fail_link", "link": [1, 2]})
        assert not response["ok"] and "down" in response["error"]
        # Nothing half-applied: the live shard still runs base routing.
        assert tf.links_spec() == []
        tf.close()
