"""Unit tests for HP-set construction (repro.core.hpset)."""

import pytest

from repro.core.hpset import (
    BlockingMode,
    HPEntry,
    HPSet,
    build_all_hp_sets,
    direct_blockers,
    stream_channels,
)
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError


def ms(i, priority, src=0, dst=1, period=100, length=10):
    return MessageStream(i, src, dst, priority=priority, period=period,
                         length=length, deadline=period)


class TestHPEntry:
    def test_direct_entry(self):
        e = HPEntry.direct(3)
        assert e.is_direct and not e.is_indirect
        assert e.intermediates == frozenset()

    def test_indirect_entry(self):
        e = HPEntry.indirect(3, [1, 2])
        assert e.is_indirect
        assert e.intermediates == frozenset({1, 2})

    def test_direct_with_intermediates_rejected(self):
        with pytest.raises(AnalysisError):
            HPEntry(3, BlockingMode.DIRECT, frozenset({1}))

    def test_indirect_without_intermediates_rejected(self):
        with pytest.raises(AnalysisError):
            HPEntry(3, BlockingMode.INDIRECT, frozenset())


class TestHPSet:
    def test_membership_and_order(self):
        hp = HPSet(9, [HPEntry.direct(5), HPEntry.direct(2)])
        assert [e.stream_id for e in hp] == [2, 5]
        assert 5 in hp and 7 not in hp
        assert hp.ids() == (2, 5)

    def test_duplicate_rejected(self):
        hp = HPSet(9, [HPEntry.direct(5)])
        with pytest.raises(AnalysisError):
            hp.add(HPEntry.direct(5))

    def test_missing_lookup(self):
        hp = HPSet(9)
        with pytest.raises(AnalysisError):
            hp[1]

    def test_direct_indirect_split(self):
        hp = HPSet(9, [HPEntry.direct(5), HPEntry.indirect(2, [5])])
        assert hp.direct_ids() == (5,)
        assert hp.indirect_ids() == (2,)

    def test_without_self(self):
        hp = HPSet(9, [HPEntry.direct(9), HPEntry.direct(5)])
        stripped = hp.without_self()
        assert stripped.ids() == (5,)
        assert hp.ids() == (5, 9)  # original untouched

    def test_equality(self):
        a = HPSet(1, [HPEntry.direct(2)])
        b = HPSet(1, [HPEntry.direct(2)])
        c = HPSet(1, [HPEntry.direct(3)])
        assert a == b and a != c


class TestDirectBlockers:
    def test_overlap_and_priority(self):
        # channel sets: 0 and 1 overlap; 2 is disjoint.
        streams = StreamSet([ms(0, priority=1), ms(1, priority=2),
                             ms(2, priority=3)])
        channels = {
            0: frozenset({(0, 1), (1, 2)}),
            1: frozenset({(1, 2), (2, 3)}),
            2: frozenset({(8, 9)}),
        }
        b = direct_blockers(streams, channels)
        assert b[0] == (1,)   # higher priority, overlapping
        assert b[1] == ()     # stream 0 is lower priority
        assert b[2] == ()

    def test_equal_priority_mutual(self):
        streams = StreamSet([ms(0, priority=2), ms(1, priority=2)])
        channels = {0: frozenset({(0, 1)}), 1: frozenset({(0, 1)})}
        b = direct_blockers(streams, channels)
        assert b[0] == (1,) and b[1] == (0,)

    def test_no_self_blocking(self):
        streams = StreamSet([ms(0, priority=1)])
        b = direct_blockers(streams, {0: frozenset({(0, 1)})})
        assert b[0] == ()


class TestFig3Example:
    """The paper's Fig. 3: A (P1), B and C (P2, mutually influential),
    D (P3) blocking both B and C; D reaches A only indirectly."""

    @pytest.fixture()
    def fig3(self):
        streams = StreamSet([
            ms(0, priority=1),   # A
            ms(1, priority=2),   # B
            ms(2, priority=2),   # C
            ms(3, priority=3),   # D
        ])
        channels = {
            0: frozenset({("a", 1), ("a", 2)}),   # A overlaps B and C
            1: frozenset({("a", 1), ("bc", 0), ("d", 1)}),
            2: frozenset({("a", 2), ("bc", 0), ("d", 2)}),
            3: frozenset({("d", 1), ("d", 2)}),   # D overlaps B and C only
        }
        return build_all_hp_sets(streams, channels=channels)

    def test_hp_d_empty(self, fig3):
        assert len(fig3[3]) == 0

    def test_b_and_c_mutual_plus_d(self, fig3):
        assert fig3[1].ids() == (2, 3)
        assert fig3[1][2].is_direct and fig3[1][3].is_direct
        assert fig3[2].ids() == (1, 3)

    def test_a_has_indirect_d_via_b_and_c(self, fig3):
        hp_a = fig3[0]
        assert hp_a.direct_ids() == (1, 2)
        assert hp_a.indirect_ids() == (3,)
        assert hp_a[3].intermediates == frozenset({1, 2})


class TestPaperExampleHPSets:
    def test_computed_hp_sets(self, paper_streams, xy10):
        hps = build_all_hp_sets(paper_streams, xy10)
        assert hps[0].ids() == ()
        assert hps[1].ids() == ()
        assert hps[2].ids() == (0, 1)
        assert hps[2].direct_ids() == (0, 1)
        # Known paper inconsistency: the printed coordinates make M2's route
        # overlap M3's, so the overlap rule adds M2 (and M0 indirectly via
        # it) to HP_3, while the paper prints HP_3 = {M1}.
        assert hps[3].direct_ids() == (1, 2)
        assert hps[3].indirect_ids() == (0,)
        assert hps[3][0].intermediates == frozenset({2})
        assert hps[4].direct_ids() == (2, 3)
        assert hps[4].indirect_ids() == (0, 1)
        assert hps[4][1].intermediates == frozenset({2, 3})

    def test_include_self(self, paper_streams, xy10):
        hps = build_all_hp_sets(paper_streams, xy10, include_self=True)
        for i in range(5):
            assert i in hps[i]
            assert hps[i][i].is_direct

    def test_stream_channels_match_routes(self, paper_streams, xy10):
        chans = stream_channels(paper_streams, xy10)
        for s in paper_streams:
            assert chans[s.stream_id] == frozenset(
                xy10.route_channels(s.src, s.dst)
            )
            assert len(chans[s.stream_id]) == xy10.hop_count(s.src, s.dst)


class TestBuildAllValidation:
    def test_requires_exactly_one_source(self, paper_streams, xy10):
        with pytest.raises(AnalysisError):
            build_all_hp_sets(paper_streams)
        with pytest.raises(AnalysisError):
            build_all_hp_sets(paper_streams, xy10, channels={})

    def test_missing_channel_set(self):
        streams = StreamSet([ms(0, priority=1), ms(1, priority=2)])
        with pytest.raises(AnalysisError):
            build_all_hp_sets(streams, channels={0: frozenset({(0, 1)})})

    def test_chain_of_three(self):
        """j <- a <- b <- k: k is indirect with both a and b intermediate."""
        streams = StreamSet([ms(0, priority=1), ms(1, priority=2),
                             ms(2, priority=3), ms(3, priority=4)])
        channels = {
            0: frozenset({("l", 0)}),
            1: frozenset({("l", 0), ("l", 1)}),
            2: frozenset({("l", 1), ("l", 2)}),
            3: frozenset({("l", 2)}),
        }
        hps = build_all_hp_sets(streams, channels=channels)
        hp0 = hps[0]
        assert hp0.direct_ids() == (1,)
        assert hp0.indirect_ids() == (2, 3)
        assert hp0[2].intermediates == frozenset({1})
        assert hp0[3].intermediates == frozenset({1, 2})
