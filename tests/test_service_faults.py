"""Fault-plane, crash-recovery and idempotency tests for the broker.

Covers the hardening half of the chaos subsystem in isolation: the
seeded fault plane, every persistence fault kind fired through
``BrokerState.append``, torn-tail repair, read-only degraded mode with
rollback, and the request-id (rid) idempotency table — in memory, across
compaction and across restarts. The end-to-end campaign lives in
``test_chaos.py``.
"""

import json

import pytest

from repro.errors import ReproError
from repro.faults.plane import (
    LAYER_OF,
    PERSISTENCE_FAULTS,
    SITE_JOURNAL_APPEND,
    FaultPlane,
    FaultSpec,
    InjectedCrash,
)
from repro.service.persistence import BrokerState
from repro.service.protocol import ProtocolError, coerce_rid, retry_backoff
from repro.service.server import BrokerServer

MESH = {"type": "mesh", "width": 6, "height": 6}


def spec(src=0, dst=3, priority=1, period=100, length=4):
    return {"src": src, "dst": dst, "priority": priority,
            "period": period, "length": length, "deadline": period}


def _armed_server(tmp_path, kind, **payload):
    """A persistent broker with one ``kind`` fault armed at the journal."""
    plane = FaultPlane(seed=5)
    server = BrokerServer(MESH, state_dir=tmp_path / "state",
                          fault_plane=plane)
    plane.arm(SITE_JOURNAL_APPEND, FaultSpec(kind, dict(payload)))
    return server, plane


class TestFaultPlane:
    def test_taxonomy_covers_four_layers(self):
        assert set(LAYER_OF.values()) == {
            "persistence", "protocol", "engine", "link",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlane().record("meteor_strike")

    def test_arm_take_is_one_shot_and_counted(self):
        plane = FaultPlane(seed=3)
        plane.arm("site", FaultSpec("disk_full"))
        assert plane.armed("site") == 1
        fault = plane.take("site")
        assert fault is not None and fault.kind == "disk_full"
        assert plane.take("site") is None
        assert plane.fired == {"disk_full": 1}
        assert plane.total_fired() == 1
        assert plane.counts_by_layer()["persistence"] == {"disk_full": 1}
        assert plane.layers_covered() == 1

    def test_disarm_discards_without_counting(self):
        plane = FaultPlane()
        plane.arm("site", FaultSpec("torn_write"))
        plane.arm("site", FaultSpec("fsync_error"))
        assert plane.disarm("site") == 2
        assert plane.total_fired() == 0
        assert plane.disarm("site") == 0

    def test_driver_side_faults_recorded(self):
        plane = FaultPlane()
        plane.record("cache_storm")
        plane.record("drop_after_send")
        plane.record("disk_full")
        assert plane.layers_covered() == 3


class TestRetryHelpers:
    def test_backoff_is_bounded_full_jitter(self):
        import random

        rng = random.Random(0)
        for attempt in range(10):
            delay = retry_backoff(attempt, base=0.05, cap=2.0, rng=rng)
            assert 0.0 <= delay < min(2.0, 0.05 * (2 ** attempt)) + 1e-9

    def test_coerce_rid(self):
        assert coerce_rid({}) is None
        assert coerce_rid({"rid": "abc"}) == "abc"
        with pytest.raises(ProtocolError):
            coerce_rid({"rid": ""})
        with pytest.raises(ProtocolError):
            coerce_rid({"rid": 7})


class TestPersistenceFaults:
    """Each persistence fault kind, fired through the real append path."""

    def test_disk_full_degrades_and_rolls_back(self, tmp_path):
        server, _ = _armed_server(tmp_path, "disk_full")
        resp = server.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        assert not resp["ok"] and resp["code"] == "degraded"
        # Rolled back: memory agrees with the (empty) journal.
        assert len(server.engine.admitted) == 0
        assert server.engine.next_id == 0
        assert server.metrics.journal_errors == 1
        assert server.degraded

    def test_fsync_error_repairs_the_journal(self, tmp_path):
        server, _ = _armed_server(tmp_path, "fsync_error")
        resp = server.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        assert resp["code"] == "degraded"
        # The half-written record was truncated away, not left behind.
        journal = (tmp_path / "state" / "journal.jsonl").read_bytes()
        assert journal == b""

    def test_release_rollback_restores_streams(self, tmp_path):
        server, plane = _armed_server(tmp_path, "disk_full")
        plane.disarm(SITE_JOURNAL_APPEND)  # admit cleanly first
        admit = server.handle_request(
            {"op": "admit", "rid": "a", "streams": [spec()]})
        assert admit["ok"] and admit["admitted"]
        plane.arm(SITE_JOURNAL_APPEND, FaultSpec("fsync_error"))
        resp = server.handle_request(
            {"op": "release", "rid": "b", "ids": [0]})
        assert resp["code"] == "degraded"
        # The released stream was re-admitted with identical analysis.
        assert server.engine.admitted.ids() == (0,)
        query = server.handle_request({"op": "query", "stream": 0})
        assert query["ok"] and query["feasible"]

    def test_degraded_refuses_mutations_allows_reads(self, tmp_path):
        server, _ = _armed_server(tmp_path, "disk_full")
        server.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        assert server.degraded
        again = server.handle_request(
            {"op": "admit", "rid": "r2", "streams": [spec(src=6, dst=9)]})
        assert again["code"] == "degraded"
        release = server.handle_request({"op": "release", "ids": [0]})
        assert release["code"] == "degraded"
        for op in ("ping", "report", "stats"):
            assert server.handle_request({"op": op})["ok"]
        stats = server.handle_request({"op": "stats"})
        assert stats["degraded"] is True
        assert stats["service"]["faults"]["degraded_entered"] == 1
        assert "repro_broker_degraded 1" in server.prometheus_text()

    def test_snapshot_clears_degraded(self, tmp_path):
        server, _ = _armed_server(tmp_path, "disk_full")
        server.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        snap = server.handle_request({"op": "snapshot"})
        assert snap["ok"] and snap["degraded_cleared"]
        assert not server.degraded
        retry = server.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        assert retry["ok"] and retry["admitted"] and retry["ids"] == [0]
        assert "duplicate" not in retry  # first attempt never committed
        assert "repro_broker_degraded 0" in server.prometheus_text()

    def test_torn_write_crash_is_recoverable(self, tmp_path):
        server, plane = _armed_server(tmp_path, "torn_write")
        with pytest.raises(InjectedCrash):
            server.handle_request(
                {"op": "admit", "rid": "r1", "streams": [spec()]})
        server.state.close()
        # The journal holds a strict prefix of the record: a torn tail.
        journal = (tmp_path / "state" / "journal.jsonl").read_bytes()
        assert journal and not journal.endswith(b"\n")
        recovered = BrokerServer(MESH, state_dir=tmp_path / "state",
                                 fault_plane=plane)
        assert len(recovered.engine.admitted) == 0
        # The retry under the same rid commits exactly once.
        retry = recovered.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        assert retry["ok"] and retry["admitted"] and retry["ids"] == [0]

    def test_crash_after_append_deduplicates_retry(self, tmp_path):
        server, plane = _armed_server(tmp_path, "crash_after_append")
        with pytest.raises(InjectedCrash):
            server.handle_request(
                {"op": "admit", "rid": "r1", "streams": [spec()]})
        server.state.close()
        recovered = BrokerServer(MESH, state_dir=tmp_path / "state",
                                 fault_plane=plane)
        # The record was durable; the lost-ack retry must not double-apply.
        assert recovered.engine.admitted.ids() == (0,)
        retry = recovered.handle_request(
            {"op": "admit", "rid": "r1", "streams": [spec()]})
        assert retry["ok"] and retry["duplicate"] and retry["ids"] == [0]
        assert recovered.engine.admitted.ids() == (0,)
        assert recovered.metrics.duplicates == 1

    def test_torn_cut_point_is_seeded(self, tmp_path):
        def torn_journal(seed):
            plane = FaultPlane(seed=seed)
            server = BrokerServer(MESH, state_dir=tmp_path / f"s{seed}",
                                  fault_plane=plane)
            plane.arm(SITE_JOURNAL_APPEND, FaultSpec("torn_write"))
            with pytest.raises(InjectedCrash):
                server.handle_request({"op": "admit", "streams": [spec()]})
            server.state.close()
            return (tmp_path / f"s{seed}" / "journal.jsonl").read_bytes()

        assert torn_journal(11) == torn_journal(11)


class TestTornTailRepair:
    """Regression: a torn tail must be *truncated*, not just skipped —
    otherwise the next append fuses with the partial bytes into one
    corrupt line that poisons the following recovery."""

    def test_append_after_torn_tail_recovery(self, tmp_path):
        state = tmp_path / "state"
        first = BrokerServer(MESH, state_dir=state)
        first.handle_request({"op": "admit", "streams": [spec()]})
        first.state.close()
        with open(state / "journal.jsonl", "a") as fh:
            fh.write('{"op": "admit", "streams": [{"src": 1,')
        second = BrokerServer(MESH, state_dir=state)
        assert second.engine.admitted.ids() == (0,)
        # Recovery compacted; appending and recovering again must work.
        second.handle_request(
            {"op": "admit", "streams": [spec(src=6, dst=9)]})
        second.state.close()
        third = BrokerServer(MESH, state_dir=state)
        assert third.engine.admitted.ids() == (0, 1)

    def test_torn_tail_truncated_even_without_snapshot(self, tmp_path):
        state = tmp_path / "state"
        BrokerState(state, MESH)  # creates the directory
        (state / "journal.jsonl").write_text('{"op": "admit", "str')
        broker_state = BrokerState(state, MESH)
        recovered = broker_state.recover()
        assert recovered.torn_tail and recovered.ops == []
        assert (state / "journal.jsonl").read_bytes() == b""

    def test_partial_record_beyond_good_tail(self, tmp_path):
        state = tmp_path / "state"
        BrokerState(state, MESH)
        (state / "journal.jsonl").write_text(
            '{"op": "release", "ids": [0]}\n{"op": "adm'
        )
        recovered = BrokerState(state, MESH).recover()
        assert recovered.torn_tail
        assert [op["op"] for op in recovered.ops] == ["release"]
        assert (state / "journal.jsonl").read_text() == (
            '{"op": "release", "ids": [0]}\n'
        )


class TestIdempotency:
    def test_duplicate_admit_not_reapplied(self, tmp_path):
        server = BrokerServer(MESH, state_dir=tmp_path / "s")
        first = server.handle_request(
            {"op": "admit", "rid": "x", "streams": [spec()]})
        dup = server.handle_request(
            {"op": "admit", "rid": "x", "streams": [spec()]})
        assert first["admitted"] and "duplicate" not in first
        assert dup["ok"] and dup["duplicate"] and dup["ids"] == first["ids"]
        assert len(server.engine.admitted) == 1
        # Only the first commit reached the journal.
        journal = (tmp_path / "s" / "journal.jsonl").read_text()
        assert journal.count('"op":"admit"') == 1

    def test_duplicate_release_not_reapplied(self, tmp_path):
        server = BrokerServer(MESH, state_dir=tmp_path / "s")
        server.handle_request({"op": "admit", "streams": [spec()]})
        first = server.handle_request(
            {"op": "release", "rid": "r", "ids": [0]})
        dup = server.handle_request(
            {"op": "release", "rid": "r", "ids": [0]})
        assert first["ok"] and dup["ok"] and dup["duplicate"]
        assert dup["released"] == [0]

    def test_rejected_admit_records_nothing(self):
        server = BrokerServer(MESH)
        # Infeasible on its own: the route is 3 hops, so the network
        # latency alone (hops + C - 1 = 6) exceeds the deadline of 4.
        tight = spec(period=4, length=4)
        rejected = server.handle_request(
            {"op": "admit", "rid": "again", "streams": [tight]})
        assert rejected["ok"] and not rejected["admitted"]
        # A retry re-evaluates (same verdict), it is not a "duplicate".
        retry = server.handle_request(
            {"op": "admit", "rid": "again", "streams": [tight]})
        assert not retry["admitted"] and "duplicate" not in retry
        # Trial ids of rejected batches are reclaimed: id stability.
        assert rejected["ids"] == retry["ids"]

    def test_rid_survives_restart_via_journal(self, tmp_path):
        server = BrokerServer(MESH, state_dir=tmp_path / "s")
        first = server.handle_request(
            {"op": "admit", "rid": "k", "streams": [spec()]})
        server.state.close()
        recovered = BrokerServer(MESH, state_dir=tmp_path / "s")
        dup = recovered.handle_request(
            {"op": "admit", "rid": "k", "streams": [spec()]})
        assert dup["duplicate"] and dup["ids"] == first["ids"]

    def test_rid_survives_compaction_and_restart(self, tmp_path):
        server = BrokerServer(MESH, state_dir=tmp_path / "s")
        server.handle_request(
            {"op": "admit", "rid": "k", "streams": [spec()]})
        server.handle_request({"op": "snapshot"})
        snapshot = json.loads((tmp_path / "s" / "snapshot.json").read_text())
        assert "k" in snapshot["applied"]
        server.state.close()
        recovered = BrokerServer(MESH, state_dir=tmp_path / "s")
        dup = recovered.handle_request(
            {"op": "admit", "rid": "k", "streams": [spec()]})
        assert dup["duplicate"] and dup["ids"] == [0]

    def test_rid_table_is_fifo_capped(self):
        from repro.service.persistence import RID_CAP

        server = BrokerServer(MESH)
        server._record_applied("first", {"released": [0]})
        for i in range(RID_CAP):
            server._record_applied(f"r{i}", {"released": [i]})
        assert len(server._applied) == RID_CAP
        assert "first" not in server._applied
        assert f"r{RID_CAP - 1}" in server._applied

    def test_bad_rid_rejected_on_the_wire(self):
        server = BrokerServer(MESH)
        resp = server.handle_request(
            {"op": "admit", "rid": 5, "streams": [spec()]})
        assert not resp["ok"] and resp["code"] == "protocol"


class TestEngineFaults:
    def test_cache_storm_preserves_verdicts(self):
        server = BrokerServer(MESH)
        for i in range(6):
            server.handle_request(
                {"op": "admit", "streams": [spec(src=i, dst=i + 12)]})
        before = server.handle_request({"op": "report"})
        server.engine.invalidate_caches()
        after = server.handle_request({"op": "report"})
        assert before["report"] == after["report"]
        assert server.engine.stats.forced_invalidations == 1
        assert "repro_engine_forced_invalidations_total 1" in (
            server.prometheus_text()
        )

    def test_reset_next_id_floors_at_admitted(self):
        server = BrokerServer(MESH)
        server.handle_request({"op": "admit", "streams": [spec()]})
        server.engine.reset_next_id(0)
        # Never below max(admitted) + 1: id 0 is taken.
        assert server.engine.next_id == 1


class TestFaultSpecKinds:
    def test_every_persistence_kind_fires_through_append(self, tmp_path):
        for kind in PERSISTENCE_FAULTS:
            plane = FaultPlane(seed=1)
            state = BrokerState(tmp_path / kind, MESH, fault_plane=plane)
            plane.arm(SITE_JOURNAL_APPEND, FaultSpec(kind))
            try:
                state.append({"op": "release", "ids": [1]})
            except InjectedCrash:
                assert kind in ("torn_write", "crash_after_append")
            except OSError:
                assert kind in ("disk_full", "fsync_error")
            else:  # pragma: no cover - every kind must raise
                raise AssertionError(f"{kind} did not fire")
            assert plane.fired == {kind: 1}
            state.close()

    def test_explicit_cut_payload_respected(self, tmp_path):
        plane = FaultPlane()
        state = BrokerState(tmp_path / "s", MESH, fault_plane=plane)
        plane.arm(SITE_JOURNAL_APPEND, FaultSpec("torn_write", {"cut": 3}))
        with pytest.raises(InjectedCrash):
            state.append({"op": "release", "ids": [1]})
        state.close()
        assert (tmp_path / "s" / "journal.jsonl").read_bytes() == b'{"i'
