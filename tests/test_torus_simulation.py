"""End-to-end tests of the torus substrate: dateline VCs in the simulator.

A torus under minimal dimension-ordered routing deadlocks without dateline
VC classes; with them the simulator must sustain heavy wrap-crossing
traffic indefinitely, and the feasibility analysis (which only consumes
channel sets) must keep bounding the measured delays.
"""

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import MessageStream, StreamSet
from repro.errors import SimulationError
from repro.sim import WormholeSimulator
from repro.topology import Torus, TorusDimensionOrderRouting


@pytest.fixture(scope="module")
def torus_net():
    torus = Torus((6, 6))
    return torus, TorusDimensionOrderRouting(torus)


def ring_streams(torus, *, length=12, period=40):
    """Four streams chasing each other around the x ring of row 0 — the
    canonical wrap-dependency cycle that deadlocks without datelines."""
    spots = [0, 2, 3, 5]
    streams = StreamSet()
    for i, x in enumerate(spots):
        src = torus.node_at((x, 0))
        dst = torus.node_at(((x + 3) % 6, 0))
        streams.add(MessageStream(
            i, src, dst, priority=1, period=period, length=length,
            deadline=10_000,
        ))
    return streams


class TestTorusSimulation:
    def test_wrap_traffic_completes(self, torus_net):
        torus, routing = torus_net
        streams = ring_streams(torus)
        sim = WormholeSimulator(torus, routing, streams,
                                watchdog_cycles=5_000)
        stats = sim.simulate_streams(5_000)
        assert stats.unfinished == 0
        for sid in streams.ids():
            assert stats.stream_stats(sid).count > 0

    def test_vcs_scale_with_classes(self, torus_net):
        torus, routing = torus_net
        streams = ring_streams(torus)
        sim = WormholeSimulator(torus, routing, streams)
        # 1 priority level x 2 dateline classes.
        assert sim.num_vcs == 2
        assert sim.num_vc_classes == 2

    def test_single_vc_mode_rejected_with_classes(self, torus_net):
        torus, routing = torus_net
        streams = ring_streams(torus)
        with pytest.raises(SimulationError):
            WormholeSimulator(torus, routing, streams, vc_mode="single")
        with pytest.raises(SimulationError):
            WormholeSimulator(torus, routing, streams, vc_mode="li")

    def test_no_load_latency_on_torus(self, torus_net):
        torus, routing = torus_net
        src = torus.node_at((5, 0))
        dst = torus.node_at((1, 0))  # 2 hops via the wrap
        s = StreamSet([MessageStream(0, src, dst, priority=1, period=1000,
                                     length=6, deadline=1000)])
        sim = WormholeSimulator(torus, routing, s)
        stats = sim.simulate_streams(1)
        assert stats.samples(0) == (2 + 6 - 1,)

    def test_bounds_hold_on_torus(self, torus_net):
        """The analysis is topology-agnostic: bounds computed over the
        torus routes must cover simulated delays, wraps included."""
        torus, routing = torus_net
        streams = ring_streams(torus, length=8, period=120)
        an = FeasibilityAnalyzer(streams, routing, residency_margin=1)
        bounds = {s.stream_id: an.upper_bound(s.stream_id)
                  for s in streams}
        sim = WormholeSimulator(torus, routing, an.streams)
        stats = sim.simulate_streams(6_000)
        for sid in stats.stream_ids():
            assert bounds[sid] > 0
            assert stats.max_delay(sid) <= bounds[sid]

    def test_priorities_with_classes(self, torus_net):
        """Two priorities x two classes = four VCs; the high-priority
        stream still preempts across the wrap."""
        torus, routing = torus_net
        src_lo = torus.node_at((4, 3))
        dst_lo = torus.node_at((1, 3))  # wraps x
        src_hi = torus.node_at((5, 3))
        dst_hi = torus.node_at((0, 3))  # wraps x, overlapping channels
        streams = StreamSet([
            MessageStream(0, src_lo, dst_lo, priority=1, period=30,
                          length=25, deadline=5_000),
            MessageStream(1, src_hi, dst_hi, priority=2, period=90,
                          length=5, deadline=5_000),
        ])
        sim = WormholeSimulator(torus, routing, streams, warmup=300)
        assert sim.num_vcs == 4
        stats = sim.simulate_streams(5_000)
        assert stats.max_delay(1) == 1 + 5 - 1  # no-load: 1 hop, C=5
