"""Unit tests for measured Gantt charts (repro.sim.gantt)."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.errors import SimulationError
from repro.sim import GanttRecorder, WormholeSimulator, render_gantt
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=1000, length=4):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=period)


class TestGanttRecorder:
    def test_single_message_staircase(self, net):
        """An unblocked worm occupies consecutive channels in a perfect
        staircase: channel k busy in cycles k+1 .. k+C."""
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0), length=4)
        route = rt.route_channels(s.src, s.dst)
        g = GanttRecorder(1, 20, channels=route)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), gantt=g)
        sim.simulate_streams(1)
        for k, ch in enumerate(route):
            cells = g.occupancy(ch)
            assert sorted(cells) == list(range(k + 1, k + 1 + 4))
            assert set(cells.values()) == {0}

    def test_window_respected(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0), length=4, period=30)
        g = GanttRecorder(start=31, end=40)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), gantt=g)
        sim.simulate_streams(60)
        times = [t for ch in g.recorded_channels()
                 for t in g.occupancy(ch)]
        assert times and all(31 <= t <= 40 for t in times)

    def test_channel_filter(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0), length=4)
        only = (mesh.node_xy(1, 0), mesh.node_xy(2, 0))
        g = GanttRecorder(channels=[only])
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), gantt=g)
        sim.simulate_streams(1)
        assert g.recorded_channels() == (only,)

    def test_utilisation(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0), length=5)
        ch = (mesh.node_xy(0, 0), mesh.node_xy(1, 0))
        g = GanttRecorder()
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), gantt=g)
        sim.simulate_streams(1)
        assert g.utilisation(ch, 1, 10) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            g.utilisation(ch, 5, 1)

    def test_bad_window(self):
        with pytest.raises(SimulationError):
            GanttRecorder(start=10, end=5)


class TestRenderGantt:
    def test_empty(self):
        assert "no transfers" in render_gantt(GanttRecorder())

    def test_symbols_and_idle(self, net):
        mesh, rt = net
        a = ms(0, mesh, (0, 0), (3, 0), length=3)
        b = ms(1, mesh, (1, 0), (4, 0), priority=2, length=3)
        g = GanttRecorder()
        sim = WormholeSimulator(mesh, rt, StreamSet([a, b]), gantt=g)
        sim.simulate_streams(1)
        out = render_gantt(g, topology=mesh)
        assert "(0,0)->(1,0)" in out
        assert "0" in out and "1" in out and "." in out

    def test_row_width_matches_range(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (2, 0), length=3)
        g = GanttRecorder()
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), gantt=g)
        sim.simulate_streams(1)
        out = render_gantt(g, lo=1, hi=12, topology=mesh)
        rows = [l for l in out.splitlines() if "->" in l]
        cells = rows[0].split()[-1]
        # label + 12 cells; the cell block starts after padding.
        assert len(rows[0]) - rows[0].index(cells[0],
                                            rows[0].index(")->") + 5) >= 12
