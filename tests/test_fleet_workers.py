"""Supervised worker processes (``repro.fleet.workers``).

The units here are the supervision contract itself: a SIGKILLed worker
is detected, respawned, and recovers its shards from their journals; a
mid-RPC kill surfaces as the retryable ``worker`` error code and the
rid idempotency table makes the retry exactly-once; detach hands a
shard back to the parent for standby promotion. The gateway tests run
the same machinery behind HTTP: /healthz worker rows, /metrics worker
gauges, and /admin/kill_worker with supervised convergence.
"""

import asyncio
import threading
import time

import pytest

from repro.errors import ReproError
from repro.fleet.client import GatewayClient
from repro.fleet.gateway import GatewayServer
from repro.fleet.replication import StandbyPool
from repro.fleet.shards import Fleet, TenantSpec
from repro.fleet.workers import WorkerSupervisor

TOPO = {"type": "mesh", "width": 4, "height": 4}


def spec(src=0, dst=2, priority=5, period=300, length=4):
    return {"src": src, "dst": dst, "priority": priority, "period": period,
            "length": length, "deadline": period}


def make_fleet(tmp_path, *, workers=1, shards=2):
    return Fleet(
        [TenantSpec("t", "key", TOPO)],
        shards=shards, state_dir=tmp_path, workers=workers,
    )


def admit_ok(fleet, rid, *, attempts=16):
    """Admit one stream, retrying on the retryable worker code."""
    response = None
    for _ in range(attempts):
        response = fleet.handle_request(
            "t", {"op": "admit", "rid": rid, "streams": [spec()]}
        )
        if response.get("code") == "worker":
            time.sleep(0.01)
            continue
        break
    assert response.get("ok"), response
    return response


class TestSupervisorRestart:
    def test_kill_then_ensure_recovers_from_journal(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            sup = fleet.supervisor
            admit_ok(fleet, "r0")
            pid = sup.kill_worker(0)
            assert pid > 0
            assert not sup.workers[0].alive
            assert sup.ensure_all() == 1
            assert sup.workers[0].restarts == 1
            assert sup.workers[0].alive
            # The respawned child recovered the admit from the journal.
            report = fleet.handle_request("t", {"op": "report"})
            assert report["ok"] and report["admitted"] == 1
        finally:
            fleet.close()

    def test_ensure_all_is_a_noop_when_healthy(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            assert fleet.supervisor.ensure_all() == 0
            assert all(wp.restarts == 0 for wp in fleet.supervisor.workers)
        finally:
            fleet.close()

    def test_responsive_probe_tracks_socket_not_pid(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            wp = fleet.supervisor.workers[0]
            assert wp.responsive()
            fleet.supervisor.kill_worker(0)
            assert not wp.responsive()
        finally:
            fleet.close()

    def test_first_call_after_kill_is_retryable_worker_code(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            fleet.supervisor.kill_worker(0)
            first = fleet.handle_request("t", {"op": "report"})
            assert first["ok"] is False
            assert first["code"] == "worker"
            assert "retry" in first["error"]
            # The failed call already triggered the respawn.
            second = fleet.handle_request("t", {"op": "report"})
            assert second["ok"]
            assert fleet.supervisor.workers[0].restarts == 1
        finally:
            fleet.close()

    def test_healthy_reflects_worker_liveness(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            assert fleet.healthy()
            fleet.supervisor.kill_worker(0)
            assert not fleet.healthy()
            fleet.supervisor.ensure_all()
            assert fleet.healthy()
        finally:
            fleet.close()

    def test_status_rows_cover_every_worker(self, tmp_path):
        fleet = make_fleet(tmp_path, workers=1)
        try:
            rows = fleet.supervisor.status()
            assert len(rows) == 1
            row = rows[0]
            assert row["alive"] is True
            assert row["restarts"] == 0
            assert isinstance(row["pid"], int)
            assert sorted(row["shards"]) == ["t/shard-0", "t/shard-1"]
        finally:
            fleet.close()


class TestInflightKill:
    def test_mid_rpc_kill_is_exactly_once_via_rid(self, tmp_path):
        """SIGKILL lands after the admit's bytes are on the wire; the
        retry with the same rid must converge on exactly one admit
        whether or not the worker committed before dying."""
        fleet = make_fleet(tmp_path)
        try:
            fleet.supervisor.arm_inflight_kill()
            response = admit_ok(fleet, "inflight-1")
            assert response["ids"] == [0]
            report = fleet.handle_request("t", {"op": "report"})
            assert report["admitted"] == 1, "mid-RPC kill double-applied"
            assert sum(
                wp.restarts for wp in fleet.supervisor.workers
            ) >= 1, "armed kill never fired"
        finally:
            fleet.close()

    def test_disarm_drops_the_pending_kill(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            fleet.supervisor.arm_inflight_kill()
            fleet.supervisor.disarm_inflight_kill()
            response = fleet.handle_request(
                "t", {"op": "admit", "rid": "d1", "streams": [spec()]}
            )
            assert response["ok"]
            assert all(
                wp.restarts == 0 for wp in fleet.supervisor.workers
            )
        finally:
            fleet.close()


class TestWorkerFailover:
    def test_detach_and_promote_cross_process(self, tmp_path):
        """Standby promotion in worker mode: the dead shard is detached
        from its worker (so respawns exclude it) and replaced by an
        in-process promoted host, invisibly to clients."""
        fleet = make_fleet(tmp_path)
        pool = StandbyPool(fleet)
        try:
            admitted = admit_ok(fleet, "f1")
            sid = admitted["ids"][0]
            pool.catch_up()
            tf = fleet.tenants["t"]
            victim = tf.owner[sid]
            victim_key = f"t/shard-{victim}"
            tf.kill_host(victim)
            pool.promote("t", victim)
            # The supervisor no longer routes (or respawns) the shard.
            with pytest.raises(ReproError, match="no worker hosts"):
                fleet.supervisor.worker_for(victim_key)
            query = fleet.handle_request("t", {"op": "query", "stream": sid})
            assert query["ok"] and query["stream"]["id"] == sid
            # A worker restart after the detach must not resurrect the
            # promoted shard inside the child.
            fleet.supervisor.kill_worker(0)
            fleet.supervisor.ensure_all()
            report = fleet.handle_request("t", {"op": "report"})
            assert report["ok"] and report["admitted"] == 1
        finally:
            fleet.close()


def run_gateway(client_fn, tmp_path, *, workers=2, standbys=False):
    """test_fleet_gateway harness, worker-pool edition."""
    result = {}

    async def main():
        fleet = Fleet(
            [TenantSpec("t", "key", TOPO)],
            shards=2, state_dir=tmp_path, workers=workers,
        )
        pool = StandbyPool(fleet) if standbys else None
        gw = GatewayServer(fleet, standbys=pool, poll_interval=0.05)
        await gw.start("127.0.0.1", 0)
        thread = threading.Thread(
            target=lambda: result.update(client_fn(gw.port))
        )
        thread.start()
        await asyncio.wait_for(gw.serve_forever(), timeout=120)
        thread.join(timeout=10)
        result["gw"] = gw

    asyncio.run(main())
    return result


class TestGatewayWorkers:
    def test_healthz_reports_worker_rows(self, tmp_path):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="key") as c:
                c.check("admit", streams=[spec()])
                health = c.get("/healthz")
                c.request("shutdown")
            return {"health": health}

        health = run_gateway(client, tmp_path)["health"]
        assert health["ok"]
        workers = health["workers"]
        assert [w["index"] for w in workers] == [0, 1]
        for w in workers:
            assert w["alive"] is True
            assert w["restarts"] == 0
            assert isinstance(w["pid"], int)
            assert w["journal_lag_bytes"] == 0  # no standbys -> no lag
        assert workers[0]["shards"] == ["t/shard-0", "t/shard-1"]

    def test_metrics_export_worker_gauges(self, tmp_path):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="key") as c:
                text = c.get("/metrics")
                c.request("shutdown")
            return {"text": text}

        text = run_gateway(client, tmp_path)["text"]
        for name in ("repro_fleet_worker_up", "repro_fleet_worker_pid",
                     "repro_fleet_worker_restarts_total",
                     "repro_fleet_worker_journal_lag_bytes"):
            assert f'{name}{{worker="0"}}' in text, name
        assert 'repro_fleet_worker_up{worker="1"} 1' in text

    def test_admin_kill_worker_converges(self, tmp_path):
        """The drill CI runs: SIGKILL a worker over HTTP, watch the
        monitor task respawn it, and prove the shards still serve."""
        def client(port):
            out = {}
            with GatewayClient(f"127.0.0.1:{port}", api_key="key") as c:
                c.check("admit", rid="gk1", streams=[spec()])
                out["kill"] = c.admin("kill_worker", worker=0)
                deadline = time.monotonic() + 30.0
                health = {}
                while time.monotonic() < deadline:
                    health = c.get("/healthz")
                    workers = health.get("workers", [])
                    if (health.get("ok")
                            and any(w["restarts"] >= 1 for w in workers)):
                        break
                    time.sleep(0.05)
                out["health"] = health
                report = {}
                for _ in range(32):
                    report = c.request("report")
                    if report.get("code") != "worker":
                        break
                    time.sleep(0.05)
                out["report"] = report
                c.request("shutdown")
            return out

        result = run_gateway(client, tmp_path)
        assert result["kill"]["_status"] == 200
        assert result["kill"]["killed_worker"] == 0
        assert result["health"]["ok"], "monitor never respawned the worker"
        assert any(
            w["restarts"] >= 1 for w in result["health"]["workers"]
        )
        assert result["report"]["ok"]
        assert result["report"]["admitted"] == 1, "restart lost the admit"

    def test_admin_kill_worker_validates_index(self, tmp_path):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="key") as c:
                bad = c.admin("kill_worker", worker=9)
                c.request("shutdown")
            return {"bad": bad}

        result = run_gateway(client, tmp_path)
        assert result["bad"]["_status"] == 400

    def test_admin_kill_worker_without_workers_is_400(self, tmp_path):
        def client(port):
            with GatewayClient(f"127.0.0.1:{port}", api_key="key") as c:
                response = c.admin("kill_worker", worker=0)
                c.request("shutdown")
            return {"response": response}

        result = run_gateway(client, tmp_path, workers=0)
        assert result["response"]["_status"] == 400
        assert "worker" in result["response"]["error"]


class TestSupervisorGuards:
    def test_needs_at_least_one_worker(self, tmp_path):
        with pytest.raises(ReproError, match="at least one worker"):
            WorkerSupervisor(tmp_path, 0)

    def test_worker_mode_requires_state_dir(self):
        with pytest.raises(ReproError, match="state"):
            Fleet([TenantSpec("t", "key", TOPO)], shards=2, workers=1)

    def test_assign_after_start_is_refused(self, tmp_path):
        fleet = make_fleet(tmp_path)
        try:
            with pytest.raises(ReproError, match="after start"):
                fleet.supervisor.assign_tenant("u", {})
        finally:
            fleet.close()
