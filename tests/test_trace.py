"""Unit tests for simulation instrumentation (repro.sim.trace)."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.errors import SimulationError
from repro.sim import TraceRecorder, WormholeSimulator, render_mesh_utilization
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=1000, length=5):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=period)


class TestTraceRecorder:
    def test_unloaded_message_timeline(self, net):
        mesh, rt = net
        trace = TraceRecorder()
        s = ms(0, mesh, (0, 0), (4, 0), length=6)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), trace=trace)
        sim.simulate_streams(1)
        t = trace.trace(0)
        assert t.release == 0
        assert t.first_flit == 1          # starts moving immediately
        assert t.queueing_delay == 0
        assert t.finish == 4 + 6 - 1
        assert t.network_delay == t.total_delay == 9

    def test_queueing_split(self, net):
        """Back-to-back releases: later messages queue at the source and
        the recorder attributes the wait to queueing, not the network."""
        mesh, rt = net
        trace = TraceRecorder()
        s = ms(0, mesh, (0, 0), (2, 0), length=20, period=10)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]), trace=trace)
        sim.simulate_streams(100)
        traces = trace.stream_traces(0)
        assert traces[0].queueing_delay == 0
        assert traces[1].queueing_delay > 0
        # Network part stays the no-load latency for every instance.
        for t in traces:
            if t.finish is not None:
                assert t.network_delay == 2 + 20 - 1
        assert trace.queueing_share(0) > 0.3

    def test_finished_ordering(self, net):
        mesh, rt = net
        trace = TraceRecorder()
        streams = StreamSet([
            ms(0, mesh, (0, 0), (4, 0), length=3, period=50),
            ms(1, mesh, (0, 1), (4, 1), length=9, period=50),
        ])
        sim = WormholeSimulator(mesh, rt, streams, trace=trace)
        sim.simulate_streams(200)
        fins = trace.finished()
        assert all(a.finish <= b.finish for a, b in zip(fins[:-1], fins[1:]))
        assert len(fins) == 8

    def test_unknown_msg_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder().trace(5)

    def test_queueing_share_requires_finished(self, net):
        mesh, rt = net
        trace = TraceRecorder()
        with pytest.raises(SimulationError):
            trace.queueing_share(0)


class TestLinkUtilization:
    def test_counts_match_transfers(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0), length=4, period=50)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        sim.simulate_streams(100)
        # Each of the 3 channels carried 4 flits per message, 2 messages.
        for ch in rt.route_channels(s.src, s.dst):
            assert sim.channel_transfers[ch] == 8
        util = sim.link_utilization()
        assert all(0 < u <= 1 for u in util.values())
        assert set(util) == set(rt.route_channels(s.src, s.dst))

    def test_utilization_before_run_rejected(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0))
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        with pytest.raises(SimulationError):
            sim.link_utilization()


class TestHeatmap:
    def test_render_shape(self):
        mesh = Mesh2D(4, 3)
        transfers = {(mesh.node_xy(0, 0), mesh.node_xy(1, 0)): 50}
        out = render_mesh_utilization(mesh, transfers, elapsed=100)
        lines = out.splitlines()
        # 3 node rows + 2 vertical-link rows + header.
        assert len(lines) == 6
        # The bottom node row shows the hot link as '5'.
        assert lines[-1].startswith("+5")
        # Everything else unused.
        assert lines[1].count(".") == 3

    def test_saturated_link_caps_at_nine(self):
        mesh = Mesh2D(2, 1)
        transfers = {(0, 1): 100, (1, 0): 100}
        out = render_mesh_utilization(mesh, transfers, elapsed=100)
        assert "+9+" in out

    def test_bad_elapsed(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(SimulationError):
            render_mesh_utilization(mesh, {}, elapsed=0)

    def test_end_to_end_with_simulator(self):
        mesh = Mesh2D(6, 6)
        rt = XYRouting(mesh)
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 3), mesh.node_xy(5, 3),
                          priority=1, period=30, length=20, deadline=3000),
        ])
        sim = WormholeSimulator(mesh, rt, streams)
        sim.simulate_streams(3_000)
        out = render_mesh_utilization(mesh, sim.channel_transfers, sim.now)
        # The loaded row must show digits >= 5 somewhere.
        assert any(c in "56789" for c in out)
