"""Unit tests for torus topologies (repro.topology.torus)."""

import pytest

from repro.errors import TopologyError
from repro.topology import Torus


class TestTorusAdjacency:
    def test_all_degrees_equal_2n(self):
        t = Torus((4, 4))
        for n in t.nodes():
            assert t.degree(n) == 4

    def test_wraparound_links(self):
        t = Torus((4, 4))
        # node (0, 0) must connect to (3, 0) and (0, 3) via wraps.
        n00 = t.node_at((0, 0))
        assert t.node_at((3, 0)) in t.neighbors(n00)
        assert t.node_at((0, 3)) in t.neighbors(n00)

    def test_extent_two_no_duplicate_links(self):
        t = Torus((2, 2))
        for n in t.nodes():
            # wrap and mesh link coincide: degree is 2, not 4.
            assert t.degree(n) == 2

    def test_extent_one_dimension_ignored(self):
        t = Torus((1, 5))
        for n in t.nodes():
            assert t.degree(n) == 2

    def test_ring(self):
        t = Torus((6,))
        assert t.num_nodes == 6
        assert set(t.neighbors(0)) == {1, 5}

    def test_neighbors_symmetric(self):
        t = Torus((3, 4))
        for u in t.nodes():
            for v in t.neighbors(u):
                assert u in t.neighbors(v)


class TestTorusDistance:
    def test_wrap_shortens_distance(self):
        t = Torus((8, 8))
        a = t.node_at((0, 0))
        b = t.node_at((7, 0))
        assert t.hop_distance(a, b) == 1

    def test_matches_mesh_when_close(self):
        t = Torus((8, 8))
        a = t.node_at((2, 2))
        b = t.node_at((4, 3))
        assert t.hop_distance(a, b) == 3

    def test_half_extent(self):
        t = Torus((8,))
        assert t.hop_distance(0, 4) == 4

    def test_coords_roundtrip(self):
        t = Torus((3, 5, 2))
        for n in t.nodes():
            assert t.node_at(t.coords(n)) == n
