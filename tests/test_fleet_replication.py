"""Journal-shipping replication: tailer edges, standby convergence,
verified promotion.

The dangerous cases are all races between the primary's compaction and
the standby's tail offset; each detection mechanism (file shrank,
consumed-prefix SHA mismatch, snapshot SHA changed at offset zero) gets
a test that would fail if that mechanism were removed.
"""

import json

from repro.fleet.replication import JournalTailer, ShardStandby, StandbyPool
from repro.fleet.shards import Fleet, TenantSpec
from repro.service.host import EngineHost

TOPO = {"type": "mesh", "width": 4, "height": 4}


def spec(src, dst, *, priority=5, period=300, length=4, deadline=300):
    return {"src": src, "dst": dst, "priority": priority, "period": period,
            "length": length, "deadline": deadline}


def record(op):
    return (json.dumps(op, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


# ---------------------------------------------------------------------- #
# JournalTailer
# ---------------------------------------------------------------------- #


class TestJournalTailer:
    def test_missing_file_is_empty_not_compacted(self, tmp_path):
        tailer = JournalTailer(tmp_path / "journal.jsonl")
        assert tailer.poll() == (False, [])

    def test_consumes_complete_records_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(record({"op": "a"}) + record({"op": "b"}))
        tailer = JournalTailer(path)
        compacted, ops = tailer.poll()
        assert not compacted and [o["op"] for o in ops] == ["a", "b"]
        assert tailer.poll() == (False, [])
        with open(path, "ab") as fh:
            fh.write(record({"op": "c"}))
        compacted, ops = tailer.poll()
        assert not compacted and [o["op"] for o in ops] == ["c"]

    def test_partial_tail_record_is_not_consumed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        full = record({"op": "a"})
        torn = record({"op": "b"})[:-5]  # no newline yet
        path.write_bytes(full + torn)
        tailer = JournalTailer(path)
        compacted, ops = tailer.poll()
        assert not compacted and [o["op"] for o in ops] == ["a"]
        assert tailer.offset == len(full)
        # The writer finishes the record: the next poll picks it up.
        path.write_bytes(full + record({"op": "b"}))
        compacted, ops = tailer.poll()
        assert not compacted and [o["op"] for o in ops] == ["b"]

    def test_compaction_detected_by_shrink(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(record({"op": "a"}) + record({"op": "b"}))
        tailer = JournalTailer(path)
        tailer.poll()
        path.write_bytes(b"")  # snapshot + truncate
        compacted, ops = tailer.poll()
        assert compacted and ops == []
        tailer.reset()
        assert tailer.poll() == (False, [])

    def test_compaction_detected_when_file_regrew(self, tmp_path):
        """Truncate-then-regrow past the old offset: only the consumed-
        prefix SHA can tell these are different records."""
        path = tmp_path / "journal.jsonl"
        path.write_bytes(record({"op": "a", "pad": "x" * 4}))
        tailer = JournalTailer(path)
        tailer.poll()
        old = tailer.offset
        # New journal, already longer than the consumed prefix.
        path.write_bytes(
            record({"op": "n1", "pad": "y" * 40})
            + record({"op": "n2"})
        )
        assert path.stat().st_size > old
        compacted, ops = tailer.poll()
        assert compacted and ops == []
        tailer.reset()
        compacted, ops = tailer.poll()
        assert not compacted and [o["op"] for o in ops] == ["n1", "n2"]

    def test_same_length_different_bytes_detected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(record({"op": "aaaa"}))
        tailer = JournalTailer(path)
        tailer.poll()
        path.write_bytes(record({"op": "bbbb"}))  # same byte length
        compacted, _ = tailer.poll()
        assert compacted

    def test_deleted_file_after_consume_is_compaction(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(record({"op": "a"}))
        tailer = JournalTailer(path)
        tailer.poll()
        path.unlink()
        compacted, ops = tailer.poll()
        assert compacted and ops == []


# ---------------------------------------------------------------------- #
# ShardStandby
# ---------------------------------------------------------------------- #


def primary(tmp_path):
    return EngineHost(TOPO, state_dir=tmp_path)


class TestShardStandby:
    def test_bootstrap_then_tail(self, tmp_path):
        host = primary(tmp_path)
        host.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        host.handle_request({"op": "snapshot"})  # snapshot + empty journal
        host.handle_request({"op": "admit", "streams": [spec(4, 6)]})

        sb = ShardStandby(tmp_path, TOPO)
        assert sb.catch_up() >= 1
        assert sb.fingerprint()[0] == host.fingerprint()[0]
        # More churn after the standby attached.
        host.handle_request({"op": "admit", "streams": [spec(8, 10)]})
        host.handle_request({"op": "release", "ids": [0]})
        sb.catch_up()
        assert sb.fingerprint()[0] == host.fingerprint()[0]
        host.close()

    def test_reload_on_compaction(self, tmp_path):
        host = primary(tmp_path)
        host.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        sb = ShardStandby(tmp_path, TOPO)
        sb.catch_up()
        reloads = sb.reloads
        host.handle_request({"op": "admit", "streams": [spec(4, 6)]})
        host.handle_request({"op": "snapshot"})
        host.handle_request({"op": "admit", "streams": [spec(8, 10)]})
        sb.catch_up()
        assert sb.reloads > reloads, "compaction must force a re-bootstrap"
        assert sb.fingerprint()[0] == host.fingerprint()[0]
        host.close()

    def test_offset_zero_snapshot_swap_detected(self, tmp_path):
        """Compaction in the bootstrap-to-first-poll window: the journal
        was empty at bootstrap (offset 0, nothing consumed), so only the
        snapshot file's own SHA can reveal the swap. Without that check
        the standby would replay post-compact ops onto the pre-compact
        snapshot and double-apply."""
        host = primary(tmp_path)
        host.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        host.handle_request({"op": "snapshot"})
        sb = ShardStandby(tmp_path, TOPO)  # bootstrapped, offset 0
        # Primary admits AND compacts before the standby's first poll:
        # the new snapshot already contains the new stream.
        host.handle_request({"op": "admit", "streams": [spec(4, 6)]})
        host.handle_request({"op": "snapshot"})
        host.handle_request({"op": "admit", "streams": [spec(8, 10)]})
        sb.catch_up()
        assert sb.fingerprint()[0] == host.fingerprint()[0]
        host.close()

    def test_promote_verifies_against_disk(self, tmp_path):
        host = primary(tmp_path)
        host.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        host.handle_request({"op": "admit", "streams": [spec(4, 6)]})
        sb = ShardStandby(tmp_path, TOPO)
        want = host.fingerprint()
        host.close()  # the primary dies
        promoted = sb.promote()
        assert promoted.fingerprint() == want
        # The promoted host is a live primary: it can keep journaling.
        response = promoted.handle_request(
            {"op": "admit", "streams": [spec(8, 10)]}
        )
        assert response["ok"]
        promoted.close()

    def test_promotion_with_admit_in_flight(self, tmp_path):
        """An op acked + journaled but not yet shipped to the standby
        must survive failover: promote() does a final catch_up before
        the fingerprint check, so nothing acked is lost."""
        host = primary(tmp_path)
        host.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        sb = ShardStandby(tmp_path, TOPO)
        sb.catch_up()
        # The "in flight" op: acked to the client, standby hasn't polled.
        acked = host.handle_request(
            {"op": "admit", "streams": [spec(4, 6)]}
        )
        assert acked["ok"]
        sid = acked["ids"][0]
        want = host.fingerprint()[0]
        host.close()  # crash now
        promoted = sb.promote()
        assert promoted.fingerprint()[0] == want
        q = promoted.handle_request({"op": "query", "stream": sid})
        assert q["ok"], "acked-then-lost across failover"
        promoted.close()


# ---------------------------------------------------------------------- #
# StandbyPool against a live fleet
# ---------------------------------------------------------------------- #


class TestStandbyPool:
    def test_pool_promote_swaps_and_rearms(self, tmp_path):
        fleet = Fleet(
            [TenantSpec("t", "k", TOPO)], shards=2, state_dir=tmp_path
        )
        pool = StandbyPool(fleet)
        tf = fleet.tenants["t"]
        a = fleet.handle_request(
            "t", {"op": "admit", "streams": [spec(0, 2)]}
        )["ids"][0]
        fleet.handle_request("t", {"op": "admit", "streams": [spec(8, 10)]})
        pool.catch_up()

        shard = tf.owner[a]
        tf.kill_host(shard)
        assert not fleet.handle_request(
            "t", {"op": "query", "stream": a}
        )["ok"]
        pool.promote("t", shard)
        assert fleet.handle_request("t", {"op": "query", "stream": a})["ok"]
        assert not tf.dead

        # The replacement standby replicates the new primary.
        fleet.handle_request("t", {"op": "admit", "streams": [spec(5, 7)]})
        pool.catch_up()
        for (tenant, i), sb in pool.standbys.items():
            assert sb.fingerprint()[0] == tf.hosts[i].fingerprint()[0]
        fleet.close()

    def test_pool_requires_persistence(self, tmp_path):
        import pytest

        from repro.errors import ReproError

        fleet = Fleet([TenantSpec("t", "k", TOPO)], shards=2)
        with pytest.raises(ReproError):
            StandbyPool(fleet)
