"""Unit tests for the lumped busy-window baseline (repro.core.busy_window)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.busy_window import busy_window_bound, busy_window_bounds
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import HPEntry, HPSet, build_all_hp_sets
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError
from tests.test_properties import MESH, XY, stream_sets


def ms(i, priority, period, length, latency=None):
    return MessageStream(i, 0, 1, priority=priority, period=period,
                         length=length, deadline=period, latency=latency)


class TestBusyWindowBound:
    def test_no_interference_is_latency(self):
        s = ms(0, 1, 100, 5, latency=9)
        r = busy_window_bound(s, HPSet(0), StreamSet([s]))
        assert r.bound == 9 and r.converged

    def test_hand_computed_fixpoint(self):
        # L=8; one blocker T=20 C=5: U = 8 + ceil(U/20)*5 -> U=13.
        lo = ms(0, 1, 60, 5, latency=8)
        hi = ms(1, 2, 20, 5, latency=8)
        streams = StreamSet([lo, hi])
        hp = HPSet(0, [HPEntry.direct(1)])
        r = busy_window_bound(lo, hp, streams)
        assert r.bound == 13

    def test_multi_window_fixpoint(self):
        # L=8; blocker T=12 C=9: 8+9=17 -> 8+18=26 -> 8+27=35 -> 8+27=35.
        lo = ms(0, 1, 100, 5, latency=8)
        hi = ms(1, 2, 12, 9, latency=10)
        streams = StreamSet([lo, hi])
        hp = HPSet(0, [HPEntry.direct(1)])
        r = busy_window_bound(lo, hp, streams)
        assert r.bound == 35

    def test_saturation_diverges(self):
        lo = ms(0, 1, 100, 5, latency=8)
        hog = ms(1, 2, 10, 10, latency=10)
        streams = StreamSet([lo, hog])
        hp = HPSet(0, [HPEntry.direct(1)])
        r = busy_window_bound(lo, hp, streams, max_bound=10_000)
        assert r.bound == -1 and not r.converged

    def test_indirect_toggle(self):
        lo = ms(0, 1, 100, 5, latency=8)
        mid = ms(1, 2, 40, 5, latency=8)
        far = ms(2, 3, 40, 5, latency=8)
        streams = StreamSet([lo, mid, far])
        hp = HPSet(0, [HPEntry.direct(1), HPEntry.indirect(2, [1])])
        full = busy_window_bound(lo, hp, streams, include_indirect=True)
        direct = busy_window_bound(lo, hp, streams, include_indirect=False)
        assert full.bound > direct.bound

    def test_missing_latency_rejected(self):
        s = ms(0, 1, 100, 5)
        with pytest.raises(AnalysisError):
            busy_window_bound(s, HPSet(0), StreamSet([s]))


class TestBusyWindowBounds:
    def test_all_streams_covered(self):
        a = ms(0, 1, 100, 5, latency=8)
        b = ms(1, 2, 50, 5, latency=8)
        streams = StreamSet([a, b])
        hps = {0: HPSet(0, [HPEntry.direct(1)]), 1: HPSet(1)}
        out = busy_window_bounds(streams, hps)
        assert set(out) == {0, 1}
        assert out[1].bound == 8

    def test_missing_hp_set_rejected(self):
        a = ms(0, 1, 100, 5, latency=8)
        with pytest.raises(AnalysisError):
            busy_window_bounds(StreamSet([a]), {})


class TestDominance:
    """The paper's diagram bound is never looser than the lumped one."""

    @given(streams=stream_sets(max_streams=6))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_diagram_never_looser_than_busy_window(self, streams):
        an = FeasibilityAnalyzer(streams, XY)
        lumped = busy_window_bounds(an.streams, an.hp_sets,
                                    max_bound=1 << 15)
        for s in an.streams:
            bw = lumped[s.stream_id].bound
            if bw <= 0:
                continue
            diagram = an.upper_bound(s.stream_id, max_horizon=1 << 16)
            assert 0 < diagram <= bw, (
                f"stream {s.stream_id}: diagram {diagram} vs busy-window {bw}"
            )

    def test_window_confinement_can_rescue_saturated_sets(self):
        """When HP utilization >= 1 the lumped iteration diverges, while
        the diagram's window confinement can still find free slots."""
        lo = MessageStream(0, MESH.node_xy(1, 0), MESH.node_xy(6, 0),
                           priority=1, period=400, length=5, deadline=400)
        # Two blockers that together fill over 100% by the lumped count,
        # but whose windows confine them to the first part of each period.
        hi1 = MessageStream(1, MESH.node_xy(0, 0), MESH.node_xy(5, 0),
                            priority=2, period=20, length=11, deadline=20)
        hi2 = MessageStream(2, MESH.node_xy(2, 0), MESH.node_xy(7, 0),
                            priority=2, period=20, length=11, deadline=20)
        streams = StreamSet([lo, hi1, hi2])
        an = FeasibilityAnalyzer(streams, XY)
        lumped = busy_window_bounds(an.streams, an.hp_sets,
                                    max_bound=1 << 14)
        assert lumped[0].bound == -1  # 2 * 11/20 = 110% demand: diverges
        # The two blockers also block each other; each window of 20 holds
        # one 11-slot instance each serialised, leaving no room... unless
        # confinement truncates. The diagram gives a definite answer either
        # way — assert it terminates and is consistent.
        diagram = an.upper_bound(0, max_horizon=1 << 14)
        assert diagram != 0
