"""The fast path's contract: cycle-for-cycle identical to the reference.

The event-driven cycle body (movable set + wait lists,
:meth:`WormholeSimulator._step_fast`) exists purely for speed; every
observable — per-stream delay samples, per-channel transfer counts,
delivery times, retransmissions, the clock itself — must match the
rescan-everything reference loop (``fastpath=False``) bit for bit.
These tests pin that contract across every arbiter policy, every VC
mode, shallow and deep VC buffers, pipelined routers and tracing.
"""

import os

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.sim.arbiter import (
    FCFSArbiter,
    PriorityPreemptiveArbiter,
    RoundRobinArbiter,
)
from repro.sim.network import WormholeSimulator
from repro.sim.trace import TraceRecorder
from repro.topology.mesh import Mesh2D
from repro.topology.routing import XYRouting

ARBITERS = {
    "preemptive": PriorityPreemptiveArbiter,
    "fcfs": FCFSArbiter,
    "rr": RoundRobinArbiter,
}

SEEDS = (0, 1, 2)


def _workload(seed: int, n: int = 24, nodes: int = 16) -> StreamSet:
    """A deterministic contended workload on the 4x4 mesh."""
    import random

    rng = random.Random(seed)
    streams = []
    for i in range(n):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        period = rng.randint(40, 160)
        streams.append(MessageStream(
            stream_id=i, src=src, dst=dst,
            priority=rng.randint(1, 5), period=period,
            length=rng.randint(2, 12), deadline=period,
        ))
    return StreamSet(streams)


def _run(seed, *, fastpath, vc_mode="per_priority", arbiter=None,
         vc_capacity=2, hop_delay=1, traced=False, until=4000):
    mesh = Mesh2D(4, 4)
    trace = TraceRecorder() if traced else None
    sim = WormholeSimulator(
        mesh, XYRouting(mesh), _workload(seed),
        arbiter=(arbiter or PriorityPreemptiveArbiter)(),
        vc_mode=vc_mode, vc_capacity=vc_capacity, hop_delay=hop_delay,
        warmup=0, trace=trace, fastpath=fastpath,
    )
    stats = sim.simulate_streams(until)
    return sim, stats, trace


def _observables(sim, stats, trace):
    """Everything the two paths must agree on, bit for bit."""
    key = (
        tuple((sid, stats.samples(sid)) for sid in stats.stream_ids()),
        tuple(sorted(sim.channel_transfers.items())),
        sim.total_transfers,
        sim.retransmissions,
        stats.unfinished,
        sim.now,
    )
    if trace is not None:
        key += (tuple(
            (t.msg_id, t.stream_id, t.release, t.first_flit, t.finish)
            for _, t in sorted(trace._traces.items())
        ),)
    return key


def _assert_paths_agree(seed, **kwargs):
    fast = _observables(*_run(seed, fastpath=True, **kwargs))
    slow = _observables(*_run(seed, fastpath=False, **kwargs))
    assert fast == slow


class TestArbiterPolicies:
    """All three arbiter policies, paper VC mode, three seeds."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("arb", sorted(ARBITERS))
    def test_identical(self, seed, arb):
        _assert_paths_agree(seed, arbiter=ARBITERS[arb])


class TestVcModes:
    """Every VC organisation, including the kill-and-retransmit mode."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "mode", ["per_priority", "single", "li", "preempt_kill"]
    )
    def test_identical(self, seed, mode):
        _assert_paths_agree(seed, vc_mode=mode)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_preempt_kill_retransmits_identically(self, seed):
        fast = _run(seed, fastpath=True, vc_mode="preempt_kill")
        slow = _run(seed, fastpath=False, vc_mode="preempt_kill")
        assert fast[0].retransmissions == slow[0].retransmissions
        assert _observables(*fast) == _observables(*slow)


class TestBufferDepthAndPipeline:
    """VC depth 1 (bubbly) and 4 (deep), pipelined routers."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("cap", [1, 4])
    def test_vc_capacity(self, seed, cap):
        _assert_paths_agree(seed, vc_capacity=cap)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("hop_delay", [2, 3])
    def test_pipelined_routers(self, seed, hop_delay):
        _assert_paths_agree(seed, hop_delay=hop_delay)


class TestTracing:
    """Trace events (release/first-flit/finish) must line up too."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_traced_run_identical(self, seed):
        _assert_paths_agree(seed, traced=True)

    def test_traced_kill_mode_identical(self):
        _assert_paths_agree(0, traced=True, vc_mode="preempt_kill")


class TestEscapeHatch:
    """`REPRO_SIM_FASTPATH` and the constructor flag select the path."""

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        sim, _, _ = _run(0, fastpath=None)
        assert sim.fastpath is False

    def test_env_var_default_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_FASTPATH", raising=False)
        sim, _, _ = _run(0, fastpath=None)
        assert sim.fastpath is True

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        sim, _, _ = _run(0, fastpath=True)
        assert sim.fastpath is True
