"""Unit tests for mesh topologies (repro.topology.mesh)."""

import pytest

from repro.errors import TopologyError
from repro.topology import Mesh, Mesh2D


class TestMeshConstruction:
    def test_num_nodes(self):
        assert Mesh((10, 10)).num_nodes == 100
        assert Mesh((3, 4, 5)).num_nodes == 60
        assert Mesh((7,)).num_nodes == 7

    def test_single_node_mesh(self):
        m = Mesh((1, 1))
        assert m.num_nodes == 1
        assert m.neighbors(0) == ()

    def test_rejects_empty_dims(self):
        with pytest.raises(TopologyError):
            Mesh(())

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(TopologyError):
            Mesh((3, 0))
        with pytest.raises(TopologyError):
            Mesh((-2,))

    def test_len_and_contains(self):
        m = Mesh((4, 4))
        assert len(m) == 16
        assert 0 in m and 15 in m
        assert 16 not in m
        assert "x" not in m


class TestMeshCoordinates:
    def test_roundtrip_all_nodes(self):
        m = Mesh((3, 4, 2))
        for n in m.nodes():
            assert m.node_at(m.coords(n)) == n

    def test_coords_order_x_fastest(self):
        m = Mesh2D(10, 10)
        assert m.coords(0) == (0, 0)
        assert m.coords(1) == (1, 0)
        assert m.coords(10) == (0, 1)

    def test_node_at_validates_length(self):
        m = Mesh((3, 3))
        with pytest.raises(TopologyError):
            m.node_at((1,))
        with pytest.raises(TopologyError):
            m.node_at((1, 1, 1))

    def test_node_at_validates_range(self):
        m = Mesh((3, 3))
        with pytest.raises(TopologyError):
            m.node_at((3, 0))
        with pytest.raises(TopologyError):
            m.node_at((0, -1))

    def test_validate_node_rejects_bad_ids(self):
        m = Mesh((3, 3))
        with pytest.raises(TopologyError):
            m.validate_node(9)
        with pytest.raises(TopologyError):
            m.validate_node(-1)
        with pytest.raises(TopologyError):
            m.validate_node(True)  # bools are not node ids


class TestMeshAdjacency:
    def test_corner_degree(self):
        m = Mesh2D(10, 10)
        assert m.degree(m.node_xy(0, 0)) == 2
        assert m.degree(m.node_xy(9, 9)) == 2

    def test_edge_degree(self):
        m = Mesh2D(10, 10)
        assert m.degree(m.node_xy(5, 0)) == 3

    def test_interior_degree(self):
        m = Mesh2D(10, 10)
        assert m.degree(m.node_xy(5, 5)) == 4

    def test_neighbors_symmetric(self):
        m = Mesh((4, 5))
        for u in m.nodes():
            for v in m.neighbors(u):
                assert u in m.neighbors(v)

    def test_neighbors_differ_in_one_coord(self):
        m = Mesh((3, 3, 3))
        for u in m.nodes():
            cu = m.coords(u)
            for v in m.neighbors(u):
                cv = m.coords(v)
                diffs = [abs(a - b) for a, b in zip(cu, cv)]
                assert sum(diffs) == 1

    def test_channel_count_2d(self):
        # A w x h mesh has 2*( (w-1)*h + w*(h-1) ) directed channels.
        m = Mesh2D(10, 10)
        assert m.num_channels() == 2 * (9 * 10 + 10 * 9)

    def test_has_channel(self):
        m = Mesh2D(3, 3)
        assert m.has_channel(0, 1)
        assert m.has_channel(1, 0)
        assert not m.has_channel(0, 2)
        assert not m.has_channel(0, 4)  # diagonal

    def test_hop_distance_manhattan(self):
        m = Mesh2D(10, 10)
        assert m.hop_distance(m.node_xy(7, 3), m.node_xy(7, 7)) == 4
        assert m.hop_distance(m.node_xy(1, 1), m.node_xy(5, 4)) == 7
        assert m.hop_distance(m.node_xy(0, 0), m.node_xy(0, 0)) == 0


class TestMesh2D:
    def test_square_default(self):
        m = Mesh2D(6)
        assert m.width == 6 and m.height == 6

    def test_rectangular(self):
        m = Mesh2D(4, 7)
        assert m.width == 4 and m.height == 7
        assert m.num_nodes == 28

    def test_node_xy_roundtrip(self):
        m = Mesh2D(10, 10)
        for x in range(10):
            for y in range(10):
                assert m.xy(m.node_xy(x, y)) == (x, y)

    def test_to_networkx(self):
        m = Mesh2D(3, 3)
        g = m.to_networkx()
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == m.num_channels()
        assert g.nodes[4]["coords"] == (1, 1)
