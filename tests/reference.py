"""Literal (slow) reference implementation of the paper's pseudocode.

``generate_init_diagram_reference`` transcribes ``Generate_Init_Diagram``
cell by cell, exactly as printed in section 4.3: scan each instance's
window slot by slot, allocate free slots until the demand is met, mark
skipped busy slots WAITING, propagate BUSY downwards. It is O(rows x
dtime) Python and exists purely as a test oracle for the vectorised
production implementation (`repro.core.timing_diagram`), which replaces
the scan with a cumulative-sum ranking.

The equivalence test (`tests/test_reference_equivalence.py`) drives both
over hypothesis-generated stream sets and requires bit-identical cell
states.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bdg import indirect_processing_order
from repro.core.hpset import HPSet
from repro.core.streams import MessageStream, StreamSet
from repro.core.timing_diagram import CellState

__all__ = ["generate_init_diagram_reference", "modify_diagram_reference"]


def generate_init_diagram_reference(
    row_streams: Sequence[MessageStream],
    dtime: int,
    removed: Optional[Mapping[int, Set[int]]] = None,
) -> np.ndarray:
    """Return the dense state grid (rows + result row, 1-based slots).

    Mirrors ``TimingDiagram.to_grid()``'s layout: shape
    ``(len(rows) + 1, dtime + 1)``, column 0 unused (FREE).
    """
    removed = removed or {}
    n = len(row_streams)
    grid = np.full((n + 1, dtime + 1), int(CellState.FREE), dtype=np.int8)

    for mi, stream in enumerate(row_streams):
        period, length = stream.period, stream.length
        skip = removed.get(stream.stream_id, set())
        index = 0
        release = 0
        while release < dtime:
            if index not in skip:
                alloctime = 0
                # FOR l = 1 TO T: scan the instance's own window.
                for l in range(1, period + 1):
                    t = release + l
                    if t > dtime:
                        break
                    if grid[mi][t] == CellState.FREE:
                        alloctime += 1
                        grid[mi][t] = CellState.ALLOCATED
                        # Rows below (and the result row) become BUSY.
                        for r in range(mi + 1, n + 1):
                            grid[r][t] = CellState.BUSY
                    elif grid[mi][t] == CellState.BUSY:
                        grid[mi][t] = CellState.WAITING
                    if alloctime == length:
                        break
            release += period
            index += 1
    return grid


def _grid_upper_bound(grid: np.ndarray, latency: int, dtime: int) -> int:
    """Cal_U's final scan on a reference grid."""
    free = 0
    for t in range(1, dtime + 1):
        if grid[-1][t] == CellState.FREE:
            free += 1
            if free == latency:
                return t
    return -1


def modify_diagram_reference(
    owner: MessageStream,
    hp: HPSet,
    streams: StreamSet,
    blockers,
    dtime: int,
) -> Tuple[np.ndarray, Dict[int, Set[int]]]:
    """Literal Modify_Diagram: per-slot release checks on reference grids.

    Walks indirect elements in the production code's BFS order, but
    evaluates everything on grids produced by
    :func:`generate_init_diagram_reference`; an instance is released when
    every slot it occupies (ALLOCATED or WAITING on its row) has every
    intermediate row FREE or BUSY, after which the grid is regenerated
    from scratch.
    """
    rows = tuple(sorted(
        (streams[e.stream_id] for e in hp
         if e.stream_id != owner.stream_id),
        key=lambda s: (-s.priority, s.stream_id),
    ))
    row_of = {s.stream_id: i for i, s in enumerate(rows)}
    removed: Dict[int, Set[int]] = {}
    grid = generate_init_diagram_reference(rows, dtime, removed)

    def occupied_slots(grid, sid, index):
        stream = streams[sid]
        mi = row_of[sid]
        lo = index * stream.period + 1
        hi = min((index + 1) * stream.period, dtime)
        return [
            t for t in range(lo, hi + 1)
            if grid[mi][t] in (CellState.ALLOCATED, CellState.WAITING)
        ]

    order = indirect_processing_order(hp, blockers, streams)
    for k in order:
        entry = hp[k]
        inter_rows = [row_of[r] for r in sorted(entry.intermediates)]
        stream_k = streams[k]
        n_inst = (dtime + stream_k.period - 1) // stream_k.period
        changed = False
        for index in range(n_inst):
            if index in removed.get(k, set()):
                continue
            slots = occupied_slots(grid, k, index)
            if not slots:
                continue
            releasable = all(
                grid[r][t] in (CellState.FREE, CellState.BUSY)
                for t in slots
                for r in inter_rows
            )
            if releasable:
                removed.setdefault(k, set()).add(index)
                changed = True
        if changed:
            grid = generate_init_diagram_reference(rows, dtime, removed)
    return grid, removed
