"""Unit tests for blocking dependency graphs (repro.core.bdg)."""

import pytest

from repro.core.bdg import bfs_layers, build_bdg, indirect_processing_order
from repro.core.hpset import build_all_hp_sets, direct_blockers, stream_channels
from repro.errors import AnalysisError


@pytest.fixture()
def paper_bdg_inputs(paper_streams, xy10):
    channels = stream_channels(paper_streams, xy10)
    blockers = direct_blockers(paper_streams, channels)
    hps = build_all_hp_sets(paper_streams, channels=channels)
    return paper_streams, blockers, hps


class TestBuildBDG:
    def test_hp4_structure(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        g = build_bdg(hps[4], blockers)
        assert set(g.nodes) == {0, 1, 2, 3, 4}
        # Owner directly blocked by its direct elements.
        assert g.has_edge(4, 2) and g.has_edge(4, 3)
        # Chains: M2 blocked by M0 and M1; M3 blocked by M1 (and M2,
        # through the documented printed-coordinate overlap).
        assert g.has_edge(2, 0) and g.has_edge(2, 1)
        assert g.has_edge(3, 1)
        # Direction is blocked-by: no reverse edges to the owner.
        assert not g.has_edge(2, 4)

    def test_node_modes(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        g = build_bdg(hps[4], blockers)
        assert g.nodes[4]["mode"] == "owner"
        assert g.nodes[2]["mode"] == "DIRECT"
        assert g.nodes[0]["mode"] == "INDIRECT"

    def test_empty_hp_set(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        g = build_bdg(hps[0], blockers)
        assert set(g.nodes) == {0}
        assert g.number_of_edges() == 0

    def test_unknown_stream_rejected(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        with pytest.raises(AnalysisError):
            build_bdg(hps[4], {k: v for k, v in blockers.items() if k != 2})


class TestBFSLayers:
    def test_layers_from_owner(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        g = build_bdg(hps[4], blockers)
        layers = bfs_layers(g, 4)
        assert layers[0] == (4,)
        assert layers[1] == (2, 3)
        assert layers[2] == (0, 1)

    def test_missing_source(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        g = build_bdg(hps[4], blockers)
        with pytest.raises(AnalysisError):
            bfs_layers(g, 99)

    def test_unreachable_nodes_appended(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge(0, 1)
        g.add_node(7)
        layers = bfs_layers(g, 0)
        assert layers == [(0,), (1,), (7,)]


class TestProcessingOrder:
    def test_order_nearest_then_priority(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        order = indirect_processing_order(hps[4], blockers, streams)
        # Both indirect elements are at BFS depth 2; M0 (P5) before M1 (P4).
        assert order == (0, 1)

    def test_empty_when_no_indirect(self, paper_bdg_inputs):
        streams, blockers, hps = paper_bdg_inputs
        assert indirect_processing_order(hps[2], blockers, streams) == ()
