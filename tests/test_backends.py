"""Backend-conformance suite for the pluggable bound backends.

Every registered backend must (i) reproduce or soundly bound the paper's
section 4.4 worked example, (ii) respect the F-7 closure-feasibility
condition (a set with an infeasible member is rejected wholesale), and
(iii) pass a shared property battery over mesh, torus and hypercube
topologies: determinism, verdict stamping, and the pairwise dominance
relations (``tighter`` never looser than ``kim98``, ``buffered`` never
tighter than ``kim98``). The fuzz-facing half proves the cross-backend
oracle actually *catches* a backend that violates its declared
refinement.
"""

import random

import pytest

from repro.core import backends
from repro.core.backends import BoundBackend, temporary_backend
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError
from repro.service.engine import IncrementalAdmissionEngine
from repro.topology import (
    ECubeRouting,
    Hypercube,
    Mesh2D,
    Torus,
    TorusDimensionOrderRouting,
    XYRouting,
)
from tests.conftest import PAPER_EXAMPLE_U

ALL = backends.names()


def _bounds(backend_name, streams, routing, **kw):
    backend = backends.get(backend_name)
    return backend.analyzer(streams, routing, **kw).determine_feasibility()


class TestRegistry:
    def test_required_backends_registered(self):
        assert {"kim98", "tighter", "buffered"} <= set(ALL)
        assert len([n for n in ALL if n != "kim98"]) >= 2

    def test_kim98_is_first_and_default(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        assert ALL[0] == "kim98"
        assert backends.default_name() == "kim98"
        assert backends.resolve_name(None) == "kim98"

    def test_get_unknown_raises_with_known_names(self):
        with pytest.raises(AnalysisError, match="kim98"):
            backends.get("kim99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="already registered"):
            backends.register(backends.get("kim98"))

    def test_refines_must_exist(self):
        with pytest.raises(AnalysisError, match="unknown backend"):
            backends.register(BoundBackend(
                name="x", summary="s", citation="c", refines="nope"
            ))

    def test_temporary_backend_scoped(self):
        b = BoundBackend(name="scratch", summary="s", citation="c")
        with temporary_backend(b):
            assert backends.get("scratch") is b
        with pytest.raises(AnalysisError):
            backends.get("scratch")

    def test_env_default_honoured(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "tighter")
        assert backends.default_name() == "tighter"
        assert backends.resolve_name(None) == "tighter"

    def test_env_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "khim98")
        with pytest.raises(AnalysisError, match="khim98"):
            backends.default_name()

    def test_backend_kwargs_win_over_callers(self, paper_streams, xy10):
        # A backend cannot be accidentally un-configured by caller kwargs.
        analyzer = backends.get("buffered").analyzer(
            paper_streams, xy10, interference_margin=0
        )
        assert analyzer.interference_margin == 1


class TestPaperExample:
    """The section 4.4 worked example (the paper's Table-5 stream set)."""

    @pytest.mark.parametrize("name", ALL)
    def test_verdicts_stamped_with_backend(
        self, name, paper_streams, xy10
    ):
        report = _bounds(name, paper_streams, xy10)
        assert {v.backend for v in report.verdicts.values()} == {name}

    @pytest.mark.parametrize("name", ["kim98", "tighter"])
    def test_exact_printed_bounds(
        self, name, paper_streams, xy10, paper_hp_override
    ):
        # kim98 reproduces the paper verbatim; tighter's refinements are
        # all no-ops on this set (distinct priorities, stable fixpoint),
        # so it must land on the identical bounds.
        report = _bounds(name, paper_streams, xy10,
                         hp_override=paper_hp_override)
        assert report.upper_bounds() == PAPER_EXAMPLE_U
        assert report.success

    def test_buffered_is_pessimistic_not_wrong(
        self, paper_streams, xy10, paper_hp_override
    ):
        kim = _bounds("kim98", paper_streams, xy10,
                      hp_override=paper_hp_override).upper_bounds()
        buf = _bounds("buffered", paper_streams, xy10,
                      hp_override=paper_hp_override).upper_bounds()
        for sid, u in buf.items():
            if u > 0:
                assert u >= kim[sid]
        # The margin may push a bound past the horizon (-1): allowed —
        # pessimism can only reject more, never admit more.

    @pytest.mark.parametrize("name", ALL)
    def test_bounds_dominate_simulation(self, name, mesh10, xy10,
                                        paper_streams):
        """Every backend's *finite computed-HP* bounds dominate the
        simulated worst case on the example (the printed HP_3 is unsound
        for the printed coordinates — see test_paper_example)."""
        from repro.sim import WormholeSimulator

        report = _bounds(name, paper_streams, xy10)
        bounds = report.upper_bounds()
        sim = WormholeSimulator(mesh10, xy10, paper_streams)
        stats = sim.simulate_streams(3_000)
        for sid in stats.stream_ids():
            if bounds[sid] > 0:
                assert stats.max_delay(sid) <= bounds[sid], (
                    f"[{name}] stream {sid}: observed "
                    f"{stats.max_delay(sid)} > U = {bounds[sid]}"
                )


class TestClosureFeasibility:
    """F-7: a bound is only meaningful when the whole HP closure is
    feasible, so a set with an infeasible member must be rejected
    wholesale — under every backend."""

    def _pair(self, mesh):
        # A: hopeless deadline (latency 14 > D 2). B: trivially feasible
        # alone, but shares A's row channels so A is in B's HP closure.
        a = MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=1, period=100, length=10, deadline=2)
        b = MessageStream(1, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=2, period=100, length=2, deadline=100)
        return a, b

    @pytest.mark.parametrize("name", ALL)
    def test_report_rejects_set_with_infeasible_member(self, name):
        mesh = Mesh2D(6, 6)
        a, b = self._pair(mesh)
        streams = StreamSet()
        streams.add(a)
        streams.add(b)
        report = _bounds(name, streams, XYRouting(mesh))
        assert not report.success
        assert not report.verdicts[0].feasible

    @pytest.mark.parametrize("name", ALL)
    def test_engine_enforces_closure_per_backend(self, name):
        mesh = Mesh2D(6, 6)
        a, b = self._pair(mesh)
        engine = IncrementalAdmissionEngine(XYRouting(mesh), analysis=name)
        assert engine.try_admit(b).admitted
        decision = engine.try_admit(a)
        assert not decision.admitted
        # The rejected batch must leave the admitted set untouched.
        assert engine.admitted.ids() == (b.stream_id,)
        assert engine.analysis_of(b.stream_id) == name


def _battery_workload(kind: str, seed: int):
    """A deterministic multi-priority workload on one of the three
    topology families."""
    rng = random.Random(seed)
    if kind == "mesh":
        topo = Mesh2D(6, 6)
        routing = XYRouting(topo)
    elif kind == "torus":
        topo = Torus((4, 4))
        routing = TorusDimensionOrderRouting(topo)
    else:
        topo = Hypercube(4)
        routing = ECubeRouting(topo)
    streams = StreamSet()
    n = topo.num_nodes
    for sid in range(12):
        src = rng.randrange(n)
        dst = rng.randrange(n)
        while dst == src:
            dst = rng.randrange(n)
        period = rng.randint(60, 240)
        streams.add(MessageStream(
            sid, src, dst, priority=rng.randint(1, 4), period=period,
            length=rng.randint(2, 6), deadline=period,
        ))
    return streams, routing


@pytest.mark.parametrize("kind", ["mesh", "torus", "hypercube"])
class TestPropertyBattery:
    """Shared cross-topology properties, checked for every backend."""

    def _reports(self, kind):
        out = {}
        for seed in range(4):
            streams, routing = _battery_workload(kind, seed)
            out[seed] = {
                name: _bounds(name, streams, routing) for name in ALL
            }
        return out

    def test_deterministic_per_backend(self, kind):
        for seed in range(4):
            streams, routing = _battery_workload(kind, seed)
            for name in ALL:
                first = _bounds(name, streams, routing).upper_bounds()
                again = _bounds(name, streams, routing).upper_bounds()
                assert first == again, (kind, seed, name)

    def test_tighter_never_looser_than_kim98(self, kind):
        for seed, reports in self._reports(kind).items():
            kim = reports["kim98"].upper_bounds()
            tight = reports["tighter"].upper_bounds()
            for sid, u in kim.items():
                if u > 0:
                    assert 0 < tight[sid] <= u, (kind, seed, sid)

    def test_tighter_admits_superset(self, kind):
        for seed, reports in self._reports(kind).items():
            kim_ok = {sid for sid, v in reports["kim98"].verdicts.items()
                      if v.feasible}
            tight_ok = {sid
                        for sid, v in reports["tighter"].verdicts.items()
                        if v.feasible}
            assert kim_ok <= tight_ok, (kind, seed)

    def test_buffered_never_tighter_than_kim98(self, kind):
        for seed, reports in self._reports(kind).items():
            kim = reports["kim98"].upper_bounds()
            buf = reports["buffered"].upper_bounds()
            for sid, u in buf.items():
                if u > 0:
                    assert u >= kim[sid], (kind, seed, sid)

    def test_highest_priority_unblocked_bound_is_latency(self, kind):
        """A stream with an empty HP set is never blocked, so every
        backend — margins and caps included — must return exactly its
        network latency."""
        for seed in range(4):
            streams, routing = _battery_workload(kind, seed)
            for name in ALL:
                analyzer = backends.get(name).analyzer(streams, routing)
                report = analyzer.determine_feasibility()
                for sid, verdict in report.verdicts.items():
                    if not analyzer.hp_sets[sid].ids():
                        assert (verdict.upper_bound
                                == verdict.stream.latency), (
                            kind, seed, name, sid)


class TestOracleCatchesBadRefinement:
    """The cross-backend fuzz oracle is only worth its keep if a backend
    that *breaks* its declared refinement is actually caught."""

    def test_bogus_refinement_trips_monotonicity(self):
        from repro.fuzz import GeneratorConfig, generate_case, run_case
        from repro.fuzz.shrink import shrink_case

        bogus = BoundBackend(
            name="bogus-loose",
            summary="deliberately looser than kim98, claims to refine it",
            citation="none",
            refines="kim98",
            analyzer_kwargs={"interference_margin": 3},
        )
        small = GeneratorConfig(width=3, height=3, sim_time=600)
        with temporary_backend(bogus):
            result = run_case(generate_case(0, small),
                              check_divergence=False)
            assert "monotonicity" in result.kinds()
            hit = next(v for v in result.violations
                       if v.kind == "monotonicity")
            assert hit.backend == "bogus-loose"
            assert hit.to_spec()["backend"] == "bogus-loose"
            # The generic shrinker minimises the new kind too.
            shrunk = shrink_case(result.case, {"monotonicity"},
                                 max_evals=60)
            assert "monotonicity" in run_case(
                shrunk.case, check_divergence=False).kinds()

    def test_clean_registry_has_no_monotonicity_violations(self):
        from repro.fuzz import GeneratorConfig, generate_case, run_case

        small = GeneratorConfig(width=3, height=3, sim_time=600)
        for seed in range(10):
            result = run_case(generate_case(seed, small))
            assert "monotonicity" not in result.kinds(), (
                seed, [v.detail for v in result.violations])
