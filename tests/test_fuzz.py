"""Tests for the differential soundness-fuzzing subsystem (repro.fuzz)."""

import dataclasses
import json

import pytest

from repro.errors import ReproError
from repro.fuzz import (
    FuzzCase,
    FuzzStream,
    GeneratorConfig,
    generate_case,
    load_counterexample,
    replay,
    run_case,
    run_fuzz_campaign,
    run_self_test,
    shrink_case,
    write_counterexample,
)
from repro.fuzz.corpus import counterexample_spec
from repro.fuzz.oracle import FuzzViolation, _admitted

SMALL = GeneratorConfig(width=3, height=3, sim_time=600)


def _case(streams, width=3, height=3, sim_time=400, **kw):
    return FuzzCase(
        width=width, height=height, streams=tuple(streams),
        sim_time=sim_time, **kw,
    )


def _stream(sid, src, dst, priority=1, period=50, length=4,
            deadline=None, phase=0):
    return FuzzStream(
        stream_id=sid, src_xy=src, dst_xy=dst, priority=priority,
        period=period, length=length,
        deadline=period if deadline is None else deadline, phase=phase,
    )


class TestGenerator:
    def test_same_seed_same_case(self):
        assert generate_case(7, SMALL) == generate_case(7, SMALL)

    def test_different_seeds_differ(self):
        cases = {generate_case(s, SMALL) for s in range(20)}
        assert len(cases) > 15  # collisions would mean a broken PRNG reseed

    def test_spec_roundtrip(self):
        for seed in range(12):
            case = generate_case(seed, SMALL)
            assert FuzzCase.from_spec(case.to_spec()) == case

    def test_cases_are_well_formed(self):
        for seed in range(30):
            case = generate_case(seed, SMALL)
            assert 1 <= len(case.streams) <= SMALL.max_streams
            sources = [s.src_xy for s in case.streams]
            assert len(sources) == len(set(sources))
            for s in case.streams:
                assert s.src_xy != s.dst_xy
                assert 1 <= s.length
                assert s.length < s.period
                assert 0 < s.deadline <= s.period

    def test_presets_all_reachable(self):
        seen = {generate_case(s, SMALL).preset for s in range(120)}
        assert seen == {"uniform", "chain", "hotspot", "funnel"}

    def test_build_produces_simulatable_network(self):
        case = generate_case(3, SMALL)
        mesh, routing, streams = case.build()
        assert mesh.num_nodes == case.width * case.height
        assert len(streams) == len(case.streams)

    def test_invalid_case_rejected(self):
        with pytest.raises(ReproError):
            _case([_stream(0, (0, 0), (0, 0))])  # src == dst
        with pytest.raises(ReproError):
            _case([_stream(0, (0, 0), (5, 5))])  # off-mesh
        with pytest.raises(ReproError):
            _case([
                _stream(0, (0, 0), (1, 0)),
                _stream(1, (0, 0), (2, 0)),  # duplicate source
            ])


class TestOracle:
    def test_clean_case_has_no_violations(self):
        result = run_case(generate_case(0, SMALL))
        assert result.ok
        assert result.kinds() == ()

    def test_bound_delta_forces_soundness_violation(self):
        case = dataclasses.replace(
            generate_case(0, SMALL), bound_delta=1 << 20
        )
        result = run_case(case)
        assert "soundness" in result.kinds()
        v = next(v for v in result.violations if v.kind == "soundness")
        assert v.observed is not None and v.bound is not None
        assert v.observed > v.bound

    def test_admission_requires_feasible_hp_closure(self):
        """A stream whose blocker is itself infeasible must not be checked:
        the diagram confines each HP instance to its period window, an
        assumption that fails for infeasible members (finding F-7)."""
        bounds = {1: 10, 2: 40}
        hp_ids = {1: (2,), 2: ()}
        case = _case([
            _stream(1, (0, 0), (2, 0), priority=1, period=50, length=4),
            _stream(2, (0, 1), (2, 1), priority=2, period=30, length=4),
        ])
        # Member 2's bound exceeds its period: 1 must be dropped with it.
        assert _admitted(case, bounds, hp_ids) == ()
        # With a feasible member, both are admitted.
        assert _admitted(case, {1: 10, 2: 20}, hp_ids) == (1, 2)

    def test_closure_is_transitive(self):
        case = _case([
            _stream(1, (0, 0), (2, 0), priority=1, period=50, length=2),
            _stream(2, (0, 1), (2, 1), priority=2, period=50, length=2),
            _stream(3, (0, 2), (2, 2), priority=3, period=50, length=2),
        ])
        bounds = {1: 10, 2: 10, 3: 9999}
        hp_ids = {1: (2,), 2: (3,), 3: ()}
        # 3 infeasible -> 2 dropped -> 1 dropped.
        assert _admitted(case, bounds, hp_ids) == ()

    def test_violation_spec_roundtrip_fields(self):
        v = FuzzViolation(
            kind="soundness", detail="d", stream_id=3, observed=9, bound=8
        )
        spec = v.to_spec()
        assert spec == {
            "kind": "soundness", "detail": "d",
            "stream_id": 3, "observed": 9, "bound": 8,
        }


class TestShrink:
    def test_shrinks_to_single_stream_under_always_true(self):
        case = generate_case(1, SMALL)
        result = shrink_case(
            case, ("soundness",), predicate=lambda c: True, max_evals=300
        )
        assert len(result.case.streams) == 1
        assert result.improved
        s = result.case.streams[0]
        assert s.length == 1
        assert result.case.sim_time < case.sim_time

    def test_never_accepts_when_predicate_false(self):
        case = generate_case(1, SMALL)
        result = shrink_case(
            case, ("soundness",), predicate=lambda c: False, max_evals=50
        )
        assert result.case == case
        assert not result.improved

    def test_respects_eval_budget(self):
        calls = []

        def pred(c):
            calls.append(1)
            return True

        shrink_case(generate_case(2, SMALL), ("x",), predicate=pred,
                    max_evals=17)
        assert len(calls) <= 17

    def test_crops_mesh_to_bounding_box(self):
        case = _case(
            [_stream(0, (2, 2), (4, 2))], width=6, height=6
        )
        result = shrink_case(
            case, ("x",), predicate=lambda c: True, max_evals=60
        )
        assert (result.case.width, result.case.height) == (3, 1)
        s = result.case.streams[0]
        assert s.src_xy == (0, 0) and s.dst_xy == (2, 0)

    def test_shrunk_case_still_violates(self):
        """End to end on a real (injected) violation: the minimised case
        reproduces the same violation kind through the oracle."""
        case = dataclasses.replace(
            generate_case(0, SMALL), bound_delta=1 << 20
        )
        kinds = run_case(case).kinds()
        assert "soundness" in kinds
        result = shrink_case(case, kinds, max_evals=120)
        assert len(result.case.streams) <= len(case.streams)
        assert "soundness" in run_case(result.case).kinds()


class TestCorpus:
    def _violating_case(self):
        case = dataclasses.replace(
            generate_case(0, SMALL), bound_delta=1 << 20
        )
        return case, run_case(case)

    def test_write_load_roundtrip(self, tmp_path):
        case, result = self._violating_case()
        spec = counterexample_spec(
            "soundness", case, result.violations,
            original=case, shrink_evals=0,
        )
        path = write_counterexample(tmp_path, spec)
        assert path.name.startswith("cex-soundness-seed0-")
        kind, loaded, full = load_counterexample(path)
        assert kind == "soundness"
        assert loaded == case
        assert full["shrink"]["streams_before"] == len(case.streams)

    def test_write_is_idempotent(self, tmp_path):
        case, result = self._violating_case()
        spec = counterexample_spec("soundness", case, result.violations)
        p1 = write_counterexample(tmp_path, spec)
        p2 = write_counterexample(tmp_path, spec)
        assert p1 == p2
        assert len(list(tmp_path.glob("cex-*.json"))) == 1

    def test_replay_reproduces(self, tmp_path):
        case, result = self._violating_case()
        spec = counterexample_spec("soundness", case, result.violations)
        path = write_counterexample(tmp_path, spec)
        rep = replay(path)
        assert rep.reproduced
        assert "REPRODUCED" in rep.summary()

    def test_replay_not_reproduced_on_fixed_case(self, tmp_path):
        case, result = self._violating_case()
        spec = counterexample_spec("soundness", case, result.violations)
        # Drop the perturbation: the stored case no longer violates.
        spec["case"]["bound_delta"] = 0
        path = write_counterexample(tmp_path, spec)
        rep = replay(path)
        assert not rep.reproduced
        assert "not reproduced" in rep.summary()

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "kind": "x", "case": {}}))
        with pytest.raises(ReproError):
            load_counterexample(path)
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ReproError):
            load_counterexample(path)


class TestCampaign:
    def test_small_campaign_is_sound(self):
        report = run_fuzz_campaign(seeds=8, generator=SMALL, jobs=1)
        assert report.sound
        assert report.seeds_run == 8
        assert report.checked > 0
        assert "sound: 0 violations" in report.summary()

    def test_campaign_deterministic(self):
        a = run_fuzz_campaign(seeds=5, generator=SMALL, jobs=1)
        b = run_fuzz_campaign(seeds=5, generator=SMALL, jobs=1)
        assert a.checked == b.checked
        assert a.outcomes_by_preset == b.outcomes_by_preset

    def test_violations_shrunk_and_persisted(self, tmp_path):
        cfg = dataclasses.replace(SMALL, bound_delta=1 << 20)
        report = run_fuzz_campaign(
            seeds=2, generator=cfg, jobs=1, max_shrink=1,
            corpus_dir=str(tmp_path),
        )
        assert not report.sound
        assert len(report.counterexamples) == 1
        record = report.counterexamples[0]
        assert record.path is not None
        assert record.streams_after <= record.streams_before
        assert replay(record.path).reproduced
        assert "UNSOUND" in report.summary()

    def test_time_budget_stops_early(self):
        report = run_fuzz_campaign(
            seeds=64, generator=SMALL, jobs=1, time_budget=0.0,
            batch_size=4,
        )
        assert report.stopped_early
        assert report.seeds_run < 64

    def test_rejects_bad_arguments(self):
        with pytest.raises(ReproError):
            run_fuzz_campaign(seeds=0)
        with pytest.raises(ReproError):
            run_fuzz_campaign(seeds=1, jobs=-1)

    def test_self_test_end_to_end(self, tmp_path):
        ok, text = run_self_test(
            corpus_dir=str(tmp_path), generator=SMALL, seeds=2, jobs=1
        )
        assert ok, text
        assert "self-test ok" in text
        assert list(tmp_path.glob("cex-*.json"))

    def test_parallel_matches_serial(self):
        serial = run_fuzz_campaign(seeds=6, generator=SMALL, jobs=1)
        parallel = run_fuzz_campaign(seeds=6, generator=SMALL, jobs=2)
        assert serial.checked == parallel.checked
        assert serial.admitted == parallel.admitted
        assert serial.outcomes_by_preset == parallel.outcomes_by_preset
