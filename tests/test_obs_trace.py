"""Tests for the observability tracer (repro.obs.trace / repro.obs.chrome).

The CI trace-determinism leg runs the whole suite under ``REPRO_TRACE=1``,
so every test here saves and restores the process-wide tracer instead of
assuming it starts out disabled.
"""

import json
import os
import pathlib

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import StreamSet
from repro.errors import ReproError
from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.io import report_to_spec
from repro.obs import chrome_trace, export_chrome_trace
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    active,
    canonical_lines,
    configure_from_env,
    install,
    instant,
    pair_spans,
    read_trace,
    span,
    trace_enabled_from_env,
    uninstall,
)
from repro.sim import WormholeSimulator
from repro.topology import Mesh2D, XYRouting

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _isolated_tracer():
    """Detach any ambient tracer (e.g. the REPRO_TRACE=1 CI leg's) and
    restore it afterwards, so tests control tracing explicitly."""
    prev = uninstall()
    try:
        yield
    finally:
        if active() is not None:
            uninstall()
        if prev is not None:
            install(prev)


class TestTraceEvent:
    def test_json_round_trip(self):
        e = TraceEvent(seq=3, ts=99, ph="B", name="cal_u", cat="analysis",
                       args={"stream": 4, "horizon": 50})
        again = TraceEvent.from_dict(json.loads(e.to_json()))
        assert again == e

    def test_rejects_unknown_phase(self):
        with pytest.raises(ReproError, match="phase"):
            TraceEvent.from_dict(
                {"seq": 0, "ts": 0, "ph": "X", "name": "n", "cat": "c"}
            )

    def test_args_default_empty(self):
        e = TraceEvent.from_dict(
            {"seq": 0, "ts": 0, "ph": "i", "name": "n", "cat": "c"}
        )
        assert e.args == {}


class TestTracer:
    def test_span_nesting_depths(self):
        tr = Tracer(clock="logical")
        with tr.span("outer", "t"):
            with tr.span("inner", "t"):
                tr.instant("tick", "t")
            with tr.span("inner2", "t"):
                pass
        spans = pair_spans(list(tr.events))
        assert [(b.name, d) for b, _, d in spans] == [
            ("inner", 1), ("inner2", 1), ("outer", 0),
        ]
        assert tr.depth == 0

    def test_mismatched_end_raises(self):
        tr = Tracer()
        tr.begin("a")
        with pytest.raises(ReproError, match="does not match"):
            tr.end("b")

    def test_pair_spans_rejects_unclosed(self):
        tr = Tracer(clock="logical")
        tr.begin("a")
        with pytest.raises(ReproError, match="unclosed"):
            pair_spans(list(tr.events))

    def test_span_closes_on_exception(self):
        tr = Tracer(clock="logical")
        with pytest.raises(ValueError):
            with tr.span("outer"):
                raise ValueError("boom")
        assert tr.depth == 0
        assert [e.ph for e in tr.events] == ["B", "E"]

    def test_logical_clock_ts_is_seq(self):
        tr = Tracer(clock="logical")
        for _ in range(5):
            tr.instant("x")
        assert [e.ts for e in tr.events] == [0, 1, 2, 3, 4]

    def test_wall_clock_monotone(self):
        tr = Tracer()
        for _ in range(3):
            tr.instant("x")
        ts = [e.ts for e in tr.events]
        assert ts == sorted(ts) and ts[0] >= 0

    def test_ring_buffer_drops_oldest(self):
        tr = Tracer(clock="logical", buffer_limit=4)
        for i in range(10):
            tr.instant("x", n=i)
        assert [e.args["n"] for e in tr.events] == [6, 7, 8, 9]

    def test_bad_clock_and_buffer_rejected(self):
        with pytest.raises(ReproError):
            Tracer(clock="sundial")
        with pytest.raises(ReproError):
            Tracer(buffer_limit=0)

    def test_counter_event(self):
        tr = Tracer(clock="logical")
        tr.counter("queue_depth", 7)
        (e,) = tr.events
        assert e.ph == "C" and e.args == {"value": 7}

    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tr = Tracer(sink=path, clock="logical")
        with tr.span("s", "t", k=1):
            tr.instant("i", "t")
        tr.close()
        events = read_trace(path)
        assert [e.ph for e in events] == ["B", "i", "E"]
        assert events == list(tr.events)

    def test_pid_substitution(self, tmp_path):
        tr = Tracer(sink=str(tmp_path / "t-{pid}.jsonl"))
        tr.instant("x")
        tr.close()
        assert (tmp_path / f"t-{os.getpid()}.jsonl").exists()

    def test_read_trace_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "ts": 0, "ph": "i", "name": "n", '
                        '"cat": "c"}\nnot json\n')
        with pytest.raises(ReproError, match="line 2"):
            read_trace(path)


class TestGlobalHelpers:
    def test_disabled_helpers_are_noops(self):
        assert active() is None
        with span("nothing", stream=1):
            instant("also nothing")
        # Disabled spans share one reusable nullcontext: no allocation.
        assert span("a") is span("b")

    def test_installed_helpers_record(self):
        tr = Tracer(clock="logical")
        install(tr)
        with span("outer", "t", k=2):
            instant("point", "t")
        assert [(e.ph, e.name) for e in tr.events] == [
            ("B", "outer"), ("i", "point"), ("E", "outer"),
        ]
        assert uninstall() is tr

    def test_configure_from_env_gate(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_CLOCK", "logical")
        monkeypatch.setenv("REPRO_TRACE_FILE", str(tmp_path / "env.jsonl"))
        tr = configure_from_env()
        assert tr is active() and tr.clock == "logical"
        tr.close()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not trace_enabled_from_env()
        assert configure_from_env() is None
        assert active() is None


class TestChromeExport:
    def _small_trace(self, tmp_path):
        path = tmp_path / "small.jsonl"
        tr = Tracer(sink=path, clock="logical")
        with tr.span("analysis", "a", streams=2):
            tr.instant("hp_set", "a", stream=0)
            tr.counter("depth", 3, cat="a")
        tr.close()
        return path

    def test_export_matches_golden(self, tmp_path):
        jsonl = self._small_trace(tmp_path)
        out = tmp_path / "chrome.json"
        count = export_chrome_trace(jsonl, out, clock="logical")
        assert count == 4
        golden = GOLDEN_DIR / "chrome_trace.json"
        assert out.read_text() == golden.read_text()

    def test_instant_and_counter_shapes(self, tmp_path):
        events = read_trace(self._small_trace(tmp_path))
        payload = chrome_trace(events, clock="logical")
        by_ph = {e["ph"]: e for e in payload["traceEvents"]}
        assert by_ph["i"]["s"] == "t"
        assert by_ph["C"]["args"] == {"value": 3}
        assert by_ph["B"]["args"]["seq"] == 0

    def test_wall_clock_scales_to_us(self):
        e = TraceEvent(seq=0, ts=5_000, ph="i", name="n", cat="c")
        assert chrome_trace([e], clock="wall")["traceEvents"][0]["ts"] == 5
        assert chrome_trace([e], clock="logical")["traceEvents"][0]["ts"] == 5000

    def test_bad_clock_rejected(self):
        with pytest.raises(ReproError):
            chrome_trace([], clock="sundial")


def _paper_analyzer(paper_streams):
    mesh = Mesh2D(10, 10)
    return FeasibilityAnalyzer(paper_streams, XYRouting(mesh))


class TestAnalysisInstrumentation:
    def test_analysis_emits_expected_spans(self, paper_streams):
        tr = Tracer(clock="logical")
        install(tr)
        _paper_analyzer(paper_streams).determine_feasibility()
        uninstall()
        events = list(tr.events)
        names = {e.name for e in events}
        assert {"build_hp_sets", "determine_feasibility", "cal_u",
                "generate_init_diagram", "modify_diagram"} <= names
        # One balanced cal_u span per stream, nested in the report span.
        spans = pair_spans(events)
        cal_u = [s for s in spans if s[0].name == "cal_u"]
        assert len(cal_u) == len(paper_streams)
        assert all(depth >= 1 for _, _, depth in cal_u)

    def test_trace_files_byte_identical_across_runs(
        self, tmp_path, paper_streams
    ):
        texts = []
        for run in range(2):
            path = tmp_path / f"run{run}.jsonl"
            tr = Tracer(sink=path, clock="logical")
            install(tr)
            _paper_analyzer(paper_streams).determine_feasibility()
            uninstall()
            tr.close()
            texts.append(path.read_bytes())
        assert texts[0] == texts[1]

    def test_wall_clock_canonical_lines_identical(
        self, tmp_path, paper_streams
    ):
        lines = []
        for run in range(2):
            path = tmp_path / f"wall{run}.jsonl"
            tr = Tracer(sink=path)
            install(tr)
            _paper_analyzer(paper_streams).determine_feasibility()
            uninstall()
            tr.close()
            lines.append(canonical_lines(path))
        assert lines[0] == lines[1]
        # Canonical lines zero ts; raw events carry the real stamps.
        raw = read_trace(tmp_path / "wall0.jsonl")
        assert any(e.ts != 0 for e in raw)


class TestSimInstrumentation:
    def _workload(self):
        case = generate_case(7, GeneratorConfig(max_streams=6))
        return case.build()

    def test_sim_trace_deterministic_across_runs(self, tmp_path):
        texts = []
        for run in range(2):
            mesh, routing, streams = self._workload()
            path = tmp_path / f"sim{run}.jsonl"
            tr = Tracer(sink=path, clock="logical")
            install(tr)
            WormholeSimulator(mesh, routing, streams).simulate_streams(600)
            uninstall()
            tr.close()
            texts.append(path.read_bytes())
        assert texts[0] == texts[1]

    def test_sim_emits_wait_or_jump_events(self):
        mesh, routing, streams = self._workload()
        tr = Tracer(clock="logical")
        install(tr)
        WormholeSimulator(mesh, routing, streams).simulate_streams(600)
        uninstall()
        names = {e.name for e in tr.events}
        assert names & {"sim.clock_jump", "sim.vc_wait", "sim.preempt"}


class TestTracingDoesNotChangeResults:
    @pytest.mark.parametrize("seed", range(6))
    def test_reports_identical_with_and_without_tracing(self, seed):
        cfg = GeneratorConfig(max_streams=6)
        case = generate_case(seed, cfg)
        _, routing, streams = case.build()

        def report():
            return report_to_spec(
                FeasibilityAnalyzer(
                    streams, routing,
                    residency_margin=case.residency_margin,
                ).determine_feasibility()
            )

        assert active() is None
        untraced = report()
        tr = Tracer(clock="logical")
        install(tr)
        traced = report()
        uninstall()
        assert traced == untraced
        assert len(tr.events) > 0
