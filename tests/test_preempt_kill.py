"""Tests for the Song-style kill-and-retransmit preemption mode.

The paper (section 3) claims its VC-per-priority emulation behaves like
Song et al.'s hardware flit-level preemption "from the viewpoint of
real-time message arrival". The ``preempt_kill`` mode approximates that
hardware: a higher-priority header kills a lower-priority worm occupying
the (single) VC; the victim retransmits from its source with its original
release time.
"""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.sim import WormholeSimulator
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def contention(mesh, *, lo_len=40, lo_period=45, hi_len=5, hi_period=100):
    return StreamSet([
        MessageStream(0, mesh.node_xy(0, 1), mesh.node_xy(6, 1),
                      priority=1, period=lo_period, length=lo_len,
                      deadline=50_000),
        MessageStream(1, mesh.node_xy(1, 1), mesh.node_xy(5, 1),
                      priority=2, period=hi_period, length=hi_len,
                      deadline=50_000),
    ])


class TestPreemptKill:
    def test_high_priority_near_no_load(self, net):
        """The paper's equivalence claim: high-priority arrival behaviour
        matches the VC-per-priority scheme to within the one-cycle kill
        latency per blocking encounter."""
        mesh, rt = net
        streams = contention(mesh)
        vc = WormholeSimulator(mesh, rt, streams, warmup=500)
        kill = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill",
                                 warmup=500)
        d_vc = vc.simulate_streams(10_000).max_delay(1)
        d_kill = kill.simulate_streams(10_000).max_delay(1)
        no_load = 4 + 5 - 1
        assert d_vc == no_load
        assert no_load <= d_kill <= no_load + 4  # small kill overhead only

    def test_victims_retransmit_and_finish(self, net):
        mesh, rt = net
        streams = contention(mesh)
        sim = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill",
                                warmup=0)
        stats = sim.simulate_streams(10_000)
        assert sim.retransmissions > 0
        assert stats.unfinished == 0
        # Every period of the low stream still produces a finished message.
        assert stats.stream_stats(0).count == 10_000 // 45 + 1

    def test_wasted_work_penalises_low_priority(self, net):
        mesh, rt = net
        streams = contention(mesh)
        vc = WormholeSimulator(mesh, rt, streams, warmup=500)
        kill = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill",
                                 warmup=500)
        lo_vc = vc.simulate_streams(10_000).mean_delay(0)
        lo_kill = kill.simulate_streams(10_000).mean_delay(0)
        assert lo_kill > 2 * lo_vc

    def test_delay_includes_wasted_attempt(self, net):
        """Retransmitted messages keep their original release time."""
        mesh, rt = net
        streams = contention(mesh, hi_period=60)
        sim = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill")
        stats = sim.simulate_streams(2_000)
        # Any killed-then-retransmitted message must measure more than the
        # no-load latency of the low stream (6 + 40 - 1 = 45).
        if sim.retransmissions:
            assert stats.max_delay(0) > 45

    def test_no_kills_without_priority_gap(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 1), mesh.node_xy(5, 1),
                          priority=1, period=80, length=20, deadline=5_000),
            MessageStream(1, mesh.node_xy(1, 1), mesh.node_xy(6, 1),
                          priority=1, period=80, length=20, deadline=5_000),
        ])
        sim = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill")
        stats = sim.simulate_streams(4_000)
        assert sim.retransmissions == 0  # equal priorities never kill
        assert stats.unfinished == 0

    def test_single_vc_organisation(self, net):
        mesh, rt = net
        sim = WormholeSimulator(mesh, rt, contention(mesh),
                                vc_mode="preempt_kill")
        assert sim.num_vcs == 1

    def test_conservation_after_kills(self, net):
        """Every stream instance eventually delivers exactly C flits at
        the destination despite kills (receiver discards partials)."""
        mesh, rt = net
        streams = contention(mesh, lo_period=90, hi_period=50)
        sim = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill")
        stats = sim.simulate_streams(5_000)
        assert stats.unfinished == 0
        for sid in (0, 1):
            s = streams[sid]
            expected = (5_000 + s.period - 1) // s.period
            assert stats.stream_stats(sid).count == expected
