"""Unit tests for the feasibility analyzer (repro.core.feasibility)."""

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import HPEntry, HPSet
from repro.core.latency import PipelinedLatency
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError
from repro.topology import Mesh2D, XYRouting


def ms(i, src, dst, priority, period=100, length=5, deadline=None,
       latency=None):
    return MessageStream(i, src, dst, priority=priority, period=period,
                         length=length, deadline=deadline or period,
                         latency=latency)


@pytest.fixture(scope="module")
def mesh():
    return Mesh2D(10, 10)


@pytest.fixture(scope="module")
def routing(mesh):
    return XYRouting(mesh)


class TestConstruction:
    def test_empty_set_rejected(self, routing):
        with pytest.raises(AnalysisError):
            FeasibilityAnalyzer(StreamSet(), routing)

    def test_requires_routing_or_channels(self):
        streams = StreamSet([ms(0, 0, 1, priority=1, latency=5)])
        with pytest.raises(AnalysisError):
            FeasibilityAnalyzer(streams)

    def test_latencies_resolved_from_route(self, mesh, routing):
        s = ms(0, mesh.node_xy(0, 0), mesh.node_xy(3, 2), priority=1,
               length=4)
        an = FeasibilityAnalyzer(StreamSet([s]), routing)
        assert an.streams[0].latency == 5 + 4 - 1

    def test_explicit_latency_kept(self, mesh, routing):
        s = ms(0, mesh.node_xy(0, 0), mesh.node_xy(3, 2), priority=1,
               latency=99)
        an = FeasibilityAnalyzer(StreamSet([s]), routing)
        assert an.streams[0].latency == 99

    def test_custom_latency_model(self, mesh, routing):
        s = ms(0, mesh.node_xy(0, 0), mesh.node_xy(3, 2), priority=1,
               length=4)
        an = FeasibilityAnalyzer(
            StreamSet([s]), routing, latency_model=PipelinedLatency(2)
        )
        assert an.streams[0].latency == 2 * 5 + 4 - 1

    def test_hp_override_unknown_stream_rejected(self, mesh, routing):
        s = ms(0, mesh.node_xy(0, 0), mesh.node_xy(3, 2), priority=1)
        with pytest.raises(AnalysisError):
            FeasibilityAnalyzer(
                StreamSet([s]), routing,
                hp_override={7: HPSet(7)},
            )


class TestSingleStream:
    def test_unblocked_bound_is_latency(self, mesh, routing):
        s = ms(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0), priority=1,
               length=6, period=50)
        an = FeasibilityAnalyzer(StreamSet([s]), routing)
        verdict = an.cal_u(0)
        assert verdict.upper_bound == 4 + 6 - 1
        assert verdict.feasible
        assert verdict.slack == 50 - 9

    def test_deadline_below_latency_infeasible(self, mesh, routing):
        s = ms(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0), priority=1,
               length=6, period=50, deadline=5)
        an = FeasibilityAnalyzer(StreamSet([s]), routing)
        verdict = an.cal_u(0)
        assert verdict.upper_bound == -1
        assert not verdict.feasible
        assert verdict.slack is None


class TestTwoStreams:
    @pytest.fixture()
    def pair(self, mesh):
        # Both cross channel (1,0)->(2,0): high (P2) preempts low (P1).
        hi = ms(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0), priority=2,
                period=20, length=5)
        lo = ms(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0), priority=1,
                period=60, length=5)
        return StreamSet([hi, lo])

    def test_high_priority_unaffected(self, pair, routing):
        an = FeasibilityAnalyzer(pair, routing)
        assert an.cal_u(0).upper_bound == 4 + 5 - 1

    def test_low_priority_pays_interference(self, pair, routing):
        an = FeasibilityAnalyzer(pair, routing)
        u = an.cal_u(1).upper_bound
        # Critical instant: three instances of the high stream (slots 1-5,
        # 21-25, 41-45) precede the 8 free slots the low stream needs.
        # Free slots 6..20 cover L=8 by t=13.
        assert u == 13

    def test_report_aggregates(self, pair, routing):
        report = FeasibilityAnalyzer(pair, routing).determine_feasibility()
        assert report.success
        assert set(report.upper_bounds()) == {0, 1}
        assert report.infeasible_ids() == ()

    def test_report_failure_lists_streams(self, mesh, routing, pair):
        tight = StreamSet([
            pair[0],
            pair[1].with_latency(None).__class__(
                stream_id=1, src=pair[1].src, dst=pair[1].dst, priority=1,
                period=60, length=5, deadline=9,
            ),
        ])
        report = FeasibilityAnalyzer(tight, routing).determine_feasibility()
        assert not report.success
        assert report.infeasible_ids() == (1,)


class TestUpperBoundSearch:
    def test_bound_beyond_deadline_found(self, mesh, routing):
        # Deadline far too small for the interference; search must extend.
        hi = ms(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0), priority=2,
                period=12, length=9)
        lo = ms(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0), priority=1,
                period=100, length=5, deadline=10)
        an = FeasibilityAnalyzer(StreamSet([hi, lo]), routing)
        assert an.cal_u(1).upper_bound == -1
        u = an.upper_bound(1)
        assert u > 10
        # 3 free slots per 12-slot window (10-12, 22-24, 34-36, ...);
        # L = 8 free slots accumulate at t = 35.
        assert u == 35

    def test_saturated_interference_returns_minus_one(self, mesh, routing):
        hog = ms(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0), priority=2,
                 period=10, length=10)
        lo = ms(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0), priority=1,
                period=100, length=5)
        an = FeasibilityAnalyzer(StreamSet([hog, lo]), routing)
        assert an.upper_bound(1, max_horizon=4096) == -1

    def test_all_upper_bounds(self, mesh, routing):
        hi = ms(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0), priority=2,
                period=20, length=5)
        lo = ms(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0), priority=1,
                period=60, length=5)
        an = FeasibilityAnalyzer(StreamSet([hi, lo]), routing)
        bounds = an.all_upper_bounds()
        assert bounds == {0: 8, 1: 13}


class TestModifyToggle:
    def test_use_modify_false_never_tighter(self, paper_streams, xy10,
                                            paper_hp_override):
        with_mod = FeasibilityAnalyzer(
            paper_streams, xy10, hp_override=paper_hp_override
        )
        without = FeasibilityAnalyzer(
            paper_streams, xy10, hp_override=paper_hp_override,
            use_modify=False,
        )
        for sid in range(5):
            u_mod = with_mod.upper_bound(sid)
            u_dir = without.upper_bound(sid)
            assert u_mod <= u_dir

    def test_direct_only_fails_paper_example(self, paper_streams, xy10,
                                             paper_hp_override):
        """Fig. 7: without Modify_Diagram only 7 free slots exist within
        M4's deadline while its latency is 10 — the test must fail."""
        an = FeasibilityAnalyzer(
            paper_streams, xy10, hp_override=paper_hp_override,
            use_modify=False,
        )
        assert an.cal_u(4).upper_bound == -1
        assert not an.determine_feasibility().success
