"""Unit tests for virtual channels and routers (repro.sim.router)."""

import pytest

from repro.errors import SimulationError
from repro.sim.flit import Message
from repro.sim.router import INJECTION_PORT, Router, VirtualChannel


def msg(msg_id=0, length=4, path=(0, 1, 2), priority=1, release=0):
    return Message(
        msg_id=msg_id, stream_id=msg_id, priority=priority,
        src=path[0], dst=path[-1], length=length, release=release, path=path,
    )


class TestMessage:
    def test_no_load_latency(self):
        m = msg(length=5, path=(0, 1, 2, 3))
        assert m.no_load_latency() == 3 + 5 - 1

    def test_delay_requires_finish(self):
        m = msg()
        with pytest.raises(SimulationError):
            m.delay()
        m.finish = 12
        assert m.delay() == 12

    def test_bad_path_rejected(self):
        with pytest.raises(SimulationError):
            Message(0, 0, 1, src=0, dst=2, length=3, release=0, path=(0, 1))

    def test_bad_length_rejected(self):
        with pytest.raises(SimulationError):
            msg(length=0)


class TestVirtualChannelLifecycle:
    def test_allocate_push_pop_release(self):
        vc = VirtualChannel(node=1, port=0, index=0, capacity=2)
        m = msg(length=2)
        vc.allocate(m, position=1)
        assert not vc.free
        vc.push_flit()
        assert vc.count == 1
        assert vc.pop_flit() is m
        vc.push_flit()
        assert vc.pop_flit() is m
        # Tail passed: VC released.
        assert vc.free and vc.count == 0

    def test_double_allocate_rejected(self):
        vc = VirtualChannel(1, 0, 0, 2)
        vc.allocate(msg(0), 1)
        with pytest.raises(SimulationError):
            vc.allocate(msg(1), 1)

    def test_push_beyond_capacity_rejected(self):
        vc = VirtualChannel(1, 0, 0, 1)
        vc.allocate(msg(length=3), 1)
        vc.push_flit()
        with pytest.raises(SimulationError):
            vc.push_flit()

    def test_push_unowned_rejected(self):
        vc = VirtualChannel(1, 0, 0, 1)
        with pytest.raises(SimulationError):
            vc.push_flit()

    def test_pop_empty_rejected(self):
        vc = VirtualChannel(1, 0, 0, 1)
        vc.allocate(msg(), 1)
        with pytest.raises(SimulationError):
            vc.pop_flit()

    def test_overfeed_rejected(self):
        vc = VirtualChannel(1, 0, 0, 4)
        vc.allocate(msg(length=1), 1)
        vc.push_flit()
        vc.pop_flit()  # releases
        vc.allocate(msg(1, length=1), 1)
        vc.push_flit()
        with pytest.raises(SimulationError):
            vc.push_flit()


class TestInjectionQueue:
    def test_enqueue_promotes_when_free(self):
        vc = VirtualChannel(0, INJECTION_PORT, 0, None)
        m = msg(length=3)
        vc.enqueue_message(m)
        assert vc.owner is m
        assert vc.count == 3  # whole message available at the source

    def test_fifo_promotion(self):
        vc = VirtualChannel(0, INJECTION_PORT, 0, None)
        a, b = msg(0, length=1), msg(1, length=2)
        vc.enqueue_message(a)
        vc.enqueue_message(b)
        assert vc.owner is a
        vc.pop_flit()  # a's tail leaves -> b promoted
        assert vc.owner is b
        assert vc.count == 2

    def test_enqueue_on_network_vc_rejected(self):
        vc = VirtualChannel(0, 5, 0, 2)
        with pytest.raises(SimulationError):
            vc.enqueue_message(msg())


class TestRouter:
    def test_ports_created(self):
        r = Router(3, upstream_nodes=(2, 4), num_vcs=3, vc_capacity=2)
        assert set(r.ports) == {2, 4, INJECTION_PORT}
        assert len(r.ports[2]) == 3
        assert all(vc.capacity == 2 for vc in r.ports[2])
        assert all(vc.capacity is None for vc in r.ports[INJECTION_PORT])

    def test_vc_lookup(self):
        r = Router(3, (2,), num_vcs=2, vc_capacity=1)
        vc = r.vc(2, 1)
        assert (vc.node, vc.port, vc.index) == (3, 2, 1)
        with pytest.raises(SimulationError):
            r.vc(9, 0)
        with pytest.raises(SimulationError):
            r.vc(2, 5)

    def test_free_vc_indices_descending(self):
        r = Router(3, (2,), num_vcs=4, vc_capacity=1)
        assert r.free_vc_indices(2, 2) == [2, 1, 0]
        r.vc(2, 1).allocate(msg(), 1)
        assert r.free_vc_indices(2, 2) == [2, 0]
        assert r.free_vc_indices(2, 0) == [0]

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            Router(0, (), num_vcs=0, vc_capacity=1)
        with pytest.raises(SimulationError):
            Router(0, (), num_vcs=1, vc_capacity=0)

    def test_all_vcs(self):
        r = Router(3, (2, 4), num_vcs=2, vc_capacity=1)
        assert len(r.all_vcs()) == 6
