"""Fuzzed validation of up*/down* and table-driven routing.

Up/down routing is the repo's fault-tolerance workhorse: it must produce
valid, loop-free, deadlock-free routes on *arbitrary* connected graphs,
including the irregular ones left behind by link failures. These tests
fuzz random connected subgraphs of every stock topology and check the
full contract, then round-trip the same routes through the JSON route
tables the management plane ships.
"""

import json
import random

import pytest

from repro.errors import RoutingError
from repro.topology import (
    DegradedTopology,
    ECubeRouting,
    FaultAwareRouting,
    Hypercube,
    Mesh2D,
    TableRouting,
    Torus,
    UpDownRouting,
    XYRouting,
    is_deadlock_free,
    normalize_link,
)


def _links(topo):
    """Every undirected link of a topology, sorted."""
    return sorted({normalize_link(u, v) for u, v in topo.channels()})


def _connected(topo, *, skip=frozenset()):
    """Is the topology connected, ignoring links in ``skip``?"""
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for nbr in topo.neighbors(node):
            if normalize_link(node, nbr) in skip:
                continue
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return len(seen) == topo.num_nodes


def random_connected_subgraph(topo, rng, *, drop_fraction=0.3):
    """A DegradedTopology that stays connected: shuffle the links and
    greedily fail each one that does not disconnect the graph."""
    links = _links(topo)
    rng.shuffle(links)
    failed = set()
    budget = int(len(links) * drop_fraction)
    for link in links:
        if len(failed) >= budget:
            break
        if _connected(topo, skip=failed | {link}):
            failed.add(link)
    return DegradedTopology(topo, sorted(failed))


def assert_updown_contract(routing):
    """Every pair routes, every route is simple and legal up*/down*."""
    topo = routing.topology
    n = topo.num_nodes
    for src in range(n):
        for dst in range(n):
            path = routing.route(src, dst)
            assert path[0] == src and path[-1] == dst
            assert len(set(path)) == len(path), f"loop in {path}"
            down_started = False
            for u, v in zip(path[:-1], path[1:]):
                assert v in topo.neighbors(u), f"dead hop {u}->{v}"
                if routing.is_up(u, v):
                    assert not down_started, (
                        f"up channel after down in {path}"
                    )
                else:
                    down_started = True


BASES = [
    lambda: Mesh2D(4, 4),
    lambda: Torus((4, 3)),
    lambda: Hypercube(4),
]


class TestUpDownFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("base", BASES,
                             ids=["mesh", "torus", "hypercube"])
    def test_random_connected_subgraphs(self, base, seed):
        rng = random.Random(seed)
        topo = random_connected_subgraph(base(), rng)
        routing = UpDownRouting(topo)
        assert_updown_contract(routing)
        assert is_deadlock_free(routing)

    @pytest.mark.parametrize("base", BASES,
                             ids=["mesh", "torus", "hypercube"])
    def test_intact_topologies(self, base):
        routing = UpDownRouting(base())
        assert_updown_contract(routing)
        assert is_deadlock_free(routing)

    def test_deterministic_across_instances(self):
        topo = DegradedTopology(Mesh2D(4, 4), [(0, 1), (5, 6)])
        a, b = UpDownRouting(topo), UpDownRouting(topo)
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                assert a.route(src, dst) == b.route(src, dst)

    def test_explicit_root(self):
        topo = Mesh2D(3, 3)
        routing = UpDownRouting(topo, root=4)
        assert routing.rank(4) == (0, 4)
        assert_updown_contract(routing)
        assert routing.signature() == ("UpDownRouting", 4)
        assert routing.signature() != UpDownRouting(topo).signature()

    def test_unreachable_pair_raises(self):
        # Cut node 3 (corner of a 2x2 mesh) off entirely.
        topo = DegradedTopology(Mesh2D(2, 2), [(1, 3), (2, 3)])
        routing = UpDownRouting(topo)
        with pytest.raises(RoutingError, match="disconnected"):
            routing.route(0, 3)
        # The reachable component still routes.
        assert routing.route(0, 2) == (0, 2)


class TestTableRoundTrip:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_json_round_trip_preserves_routes(self, seed):
        rng = random.Random(seed)
        topo = random_connected_subgraph(Mesh2D(4, 3), rng)
        source = UpDownRouting(topo)
        table = TableRouting.from_routing(source)
        text = table.to_json()
        loaded = TableRouting.from_json(topo, text)
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                assert loaded.route(src, dst) == source.route(src, dst)
                assert (loaded.route_classes(src, dst)
                        == source.route_classes(src, dst))
        # Canonical JSON means identical signatures for identical tables.
        assert loaded.signature() == table.signature()
        assert loaded.to_json() == text
        assert is_deadlock_free(loaded)

    def test_missing_pair_raises_with_pair_named(self):
        topo = Mesh2D(2, 2)
        table = TableRouting(topo, {(0, 1): (0, 1)})
        assert table.route(0, 1) == (0, 1)
        with pytest.raises(RoutingError, match=r"\(1, 0\)"):
            table.route(1, 0)

    def test_fault_aware_table_dump(self):
        # Dumping a FaultAwareRouting captures the detours and the extra
        # VC class; the table replays them without the live machinery.
        base = XYRouting(Mesh2D(3, 3))
        far = FaultAwareRouting(base, [(0, 1)])
        table = TableRouting.from_routing(far)
        assert table.num_vc_classes == far.num_vc_classes
        for src in range(9):
            for dst in range(9):
                assert table.route(src, dst) == far.route(src, dst)
                assert (table.route_classes(src, dst)
                        == far.route_classes(src, dst))
        assert is_deadlock_free(table)

    def test_bad_specs_rejected(self):
        topo = Hypercube(2)
        with pytest.raises(RoutingError, match="not valid JSON"):
            TableRouting.from_json(topo, "{nope")
        with pytest.raises(RoutingError, match="must be an object"):
            TableRouting.from_json(topo, "[1, 2]")
        with pytest.raises(RoutingError, match="'routes'"):
            TableRouting.from_spec(topo, {})
        with pytest.raises(RoutingError, match="duplicate"):
            TableRouting.from_spec(topo, {"routes": [
                {"src": 0, "dst": 1, "path": [0, 1]},
                {"src": 0, "dst": 1, "path": [0, 1]},
            ]})
        with pytest.raises(RoutingError, match="bad route table entry"):
            TableRouting.from_spec(topo, {"routes": [{"src": 0}]})

    def test_ecube_survives_round_trip(self):
        cube = Hypercube(3)
        table = TableRouting.from_routing(ECubeRouting(cube))
        spec = json.loads(table.to_json())
        assert spec["num_vc_classes"] == 1
        loaded = TableRouting.from_spec(cube, spec)
        assert loaded.route(0, 7) == ECubeRouting(cube).route(0, 7)
