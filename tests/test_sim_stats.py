"""Unit tests for statistics collection (repro.sim.stats)."""

import pytest

from repro.errors import SimulationError
from repro.sim.flit import Message
from repro.sim.stats import DelayStats, StatsCollector


def finished(msg_id, stream_id, priority, release, finish):
    m = Message(
        msg_id=msg_id, stream_id=stream_id, priority=priority,
        src=0, dst=1, length=2, release=release, path=(0, 1),
    )
    m.finish = finish
    return m


class TestDelayStats:
    def test_summary(self):
        d = DelayStats.from_samples([10, 20, 30])
        assert d.count == 3
        assert d.mean == 20.0
        assert d.maximum == 30 and d.minimum == 10
        assert d.std == pytest.approx(8.1649658)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            DelayStats.from_samples([])


class TestStatsCollector:
    def test_record_and_query(self):
        c = StatsCollector()
        c.record(finished(0, 0, 1, release=0, finish=10))
        c.record(finished(1, 0, 1, release=5, finish=25))
        assert c.stream_ids() == (0,)
        assert c.samples(0) == (10, 20)
        assert c.mean_delay(0) == 15.0
        assert c.max_delay(0) == 20

    def test_warmup_releases_dropped(self):
        c = StatsCollector(warmup=100)
        c.record(finished(0, 0, 1, release=50, finish=200))
        c.record(finished(1, 0, 1, release=100, finish=130))
        assert c.dropped == 1
        assert c.samples(0) == (30,)

    def test_unfinished_message_rejected(self):
        c = StatsCollector()
        m = Message(0, 0, 1, src=0, dst=1, length=2, release=0, path=(0, 1))
        with pytest.raises(SimulationError):
            c.record(m)

    def test_stats_for_silent_stream_rejected(self):
        c = StatsCollector()
        with pytest.raises(SimulationError):
            c.stream_stats(3)

    def test_priority_pooling(self):
        c = StatsCollector()
        c.record(finished(0, 0, priority=1, release=0, finish=10))
        c.record(finished(1, 1, priority=1, release=0, finish=30))
        c.record(finished(2, 2, priority=2, release=0, finish=5))
        pooled = c.priority_stats()
        assert pooled[1].count == 2 and pooled[1].mean == 20.0
        assert pooled[2].count == 1 and pooled[2].mean == 5.0

    def test_all_stream_stats(self):
        c = StatsCollector()
        c.record(finished(0, 0, 1, 0, 10))
        c.record(finished(1, 4, 2, 0, 12))
        out = c.all_stream_stats()
        assert set(out) == {0, 4}

    def test_negative_warmup_rejected(self):
        with pytest.raises(SimulationError):
            StatsCollector(warmup=-1)
