"""Unit tests for timing diagrams (repro.core.timing_diagram).

The central fixture is the paper's Fig. 4 example: three higher-priority
streams M1 (T=10, C=2), M2 (T=15, C=3), M3 (T=13, C=4) all directly blocking
a stream whose network latency is 6; the paper reads U = 26 off the diagram.
"""

import numpy as np
import pytest

from repro.core.streams import MessageStream
from repro.core.timing_diagram import (
    CellState,
    TimingDiagram,
    generate_init_diagram,
)
from repro.errors import AnalysisError


def ms(i, priority, period, length, src=0, dst=1):
    return MessageStream(i, src, dst, priority=priority, period=period,
                         length=length, deadline=period)


@pytest.fixture()
def fig4_rows():
    return (
        ms(1, priority=3, period=10, length=2),
        ms(2, priority=2, period=15, length=3),
        ms(3, priority=1, period=13, length=4),
    )


class TestFig4Diagram:
    def test_paper_u26(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=40)
        assert d.upper_bound(6) == 26

    def test_allocations_match_hand_execution(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=40)
        alloc = {
            sid: tuple(
                t for inst in insts for t in inst.allocated
            )
            for sid, insts in d.instances.items()
        }
        assert alloc[1] == (1, 2, 11, 12, 21, 22, 31, 32)
        assert alloc[2] == (3, 4, 5, 16, 17, 18, 33, 34, 35)
        # M3's second instance is split around M2's: 14,15 then 19,20. Its
        # fourth instance (released at 39) is truncated by the horizon and
        # only grabs slot 40.
        assert alloc[3] == (6, 7, 8, 9, 14, 15, 19, 20, 27, 28, 29, 30, 40)
        assert not d.instances[3][3].satisfied

    def test_free_slots(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=30)
        assert list(d.free_slots()) == [10, 13, 23, 24, 25, 26]

    def test_waiting_marks(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=30)
        # M2 is preempted by M1 during slots 1-2 of its first instance.
        assert d.state(d.row_of(2), 1) is CellState.WAITING
        assert d.state(d.row_of(2), 2) is CellState.WAITING
        assert d.state(d.row_of(2), 3) is CellState.ALLOCATED
        # M3 waits through slots 1-5 before allocating 6-9.
        r3 = d.row_of(3)
        for t in range(1, 6):
            assert d.state(r3, t) is CellState.WAITING
        assert d.state(r3, 6) is CellState.ALLOCATED

    def test_result_row_states(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=30)
        res = d.num_rows
        assert d.state(res, 10) is CellState.FREE
        assert d.state(res, 1) is CellState.BUSY
        assert d.state(res, 6) is CellState.BUSY


class TestDiagramBasics:
    def test_empty_rows_all_free(self):
        d = generate_init_diagram(0, (), dtime=20)
        assert d.num_free_slots() == 20
        assert d.upper_bound(5) == 5
        assert d.upper_bound(20) == 20
        assert d.upper_bound(21) == -1

    def test_single_row_periodic_pattern(self):
        d = generate_init_diagram(9, (ms(0, 1, period=10, length=3),), dtime=25)
        alloc = d.instances[0]
        assert [inst.allocated for inst in alloc] == [
            (1, 2, 3), (11, 12, 13), (21, 22, 23),
        ]
        assert all(inst.satisfied for inst in alloc)
        assert list(d.free_slots()) == [4, 5, 6, 7, 8, 9, 10,
                                        14, 15, 16, 17, 18, 19, 20, 24, 25]

    def test_unsatisfied_instance_detected(self):
        # Higher-priority stream saturates the window: C=8 every T=10 leaves
        # only 2 free slots per window for a C=5 lower stream.
        rows = (ms(0, 2, period=10, length=8), ms(1, 1, period=10, length=5))
        d = generate_init_diagram(9, rows, dtime=20)
        unsat = d.unsatisfied_instances()
        assert {u.stream_id for u in unsat} == {1}
        assert all(not u.satisfied for u in unsat)

    def test_removed_instances_skipped(self):
        rows = (ms(0, 1, period=10, length=3),)
        d = generate_init_diagram(9, rows, dtime=30, removed={0: {1}})
        releases = [inst.index for inst in d.instances[0]]
        assert releases == [0, 2]
        # Slots 11-13 stay free.
        assert d.state(d.num_rows, 11) is CellState.FREE

    def test_window_confinement(self):
        """An instance may not spill past its own period window even when
        earlier slots are all busy."""
        rows = (ms(0, 2, period=6, length=5), ms(1, 1, period=6, length=4))
        d = generate_init_diagram(9, rows, dtime=12)
        first = d.instances[1][0]
        # Only slot 6 is free inside window (0, 6] for stream 1.
        assert first.allocated == (6,)
        assert not first.satisfied

    def test_upper_bound_latency_validation(self):
        d = generate_init_diagram(0, (), dtime=5)
        with pytest.raises(AnalysisError):
            d.upper_bound(0)

    def test_bad_dtime(self):
        with pytest.raises(AnalysisError):
            generate_init_diagram(0, (), dtime=0)

    def test_rows_must_be_priority_sorted(self):
        rows = (ms(0, 1, period=10, length=2), ms(1, 2, period=10, length=2))
        with pytest.raises(AnalysisError):
            generate_init_diagram(9, rows, dtime=10)

    def test_tie_rows_sorted_by_id(self):
        ok = (ms(0, 2, period=10, length=2), ms(1, 2, period=10, length=2))
        generate_init_diagram(9, ok, dtime=10)
        bad = (ms(1, 2, period=10, length=2), ms(0, 2, period=10, length=2))
        with pytest.raises(AnalysisError):
            generate_init_diagram(9, bad, dtime=10)

    def test_duplicate_rows_rejected(self):
        rows = (ms(0, 1, period=10, length=2), ms(0, 1, period=10, length=2))
        with pytest.raises(AnalysisError):
            generate_init_diagram(9, rows, dtime=10)

    def test_state_bounds_checked(self):
        d = generate_init_diagram(9, (ms(0, 1, period=5, length=1),), dtime=10)
        with pytest.raises(AnalysisError):
            d.state(0, 0)
        with pytest.raises(AnalysisError):
            d.state(0, 11)
        with pytest.raises(AnalysisError):
            d.state(5, 3)

    def test_row_of_unknown_stream(self):
        d = generate_init_diagram(9, (ms(0, 1, period=5, length=1),), dtime=10)
        with pytest.raises(AnalysisError):
            d.row_of(42)


class TestToGrid:
    def test_grid_matches_state(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=30)
        grid = d.to_grid()
        assert grid.shape == (4, 31)
        for row in range(d.num_rows + 1):
            for t in range(1, 31):
                assert grid[row, t] == d.state(row, t)

    def test_grid_dtype_compact(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=30)
        assert d.to_grid().dtype == np.int8


class TestCriticalInstantProperties:
    def test_result_busy_is_union_of_allocations(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=40)
        union = np.zeros(41, dtype=bool)
        for row in range(d.num_rows):
            union |= d.allocated[row]
        assert np.array_equal(union, d.result_busy())

    def test_rows_never_allocate_same_slot(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=40)
        total = d.allocated[:, 1:].sum(axis=0)
        assert total.max() <= 1

    def test_satisfied_instances_allocate_exactly_c(self, fig4_rows):
        d = generate_init_diagram(4, fig4_rows, dtime=40)
        for s in fig4_rows:
            for inst in d.instances[s.stream_id]:
                if inst.satisfied:
                    assert len(inst.allocated) == s.length
                window_lo = inst.release + 1
                window_hi = min(inst.release + s.period, 40)
                for t in inst.occupied():
                    assert window_lo <= t <= window_hi
