"""Tests for the broker server: protocol, ops, metrics, persistence,
and the asyncio front end over a unix socket."""

import asyncio
import json
import threading

import pytest

from repro.errors import ReproError
from repro.service.loadgen import BrokerClient, churn_spec, run_load
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.persistence import BrokerState
from repro.service.protocol import ProtocolError, decode, encode, error_response
from repro.service.server import BrokerServer

MESH = {"type": "mesh", "width": 6, "height": 6}


def spec(sid=None, src=0, dst=3, priority=1, period=100, length=4,
         deadline=None):
    entry = {"src": src, "dst": dst, "priority": priority,
             "period": period, "length": length,
             "deadline": deadline or period}
    if sid is not None:
        entry["id"] = sid
    return entry


class TestProtocol:
    def test_encode_decode_round_trip(self):
        line = encode({"op": "hello", "id": 3})
        assert line.endswith(b"\n")
        assert decode(line) == {"op": "hello", "id": 3}

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode(b'{"no": "op"}\n')
        with pytest.raises(ProtocolError):
            decode(b'{"op": "warp"}\n')

    def test_error_response_echoes_id(self):
        resp = error_response({"id": 9}, "boom", code="stream")
        assert resp == {"ok": False, "error": "boom", "code": "stream",
                        "id": 9}


class TestMetrics:
    def test_histogram_buckets_and_quantiles(self):
        h = LatencyHistogram()
        assert h.quantile(0.5) is None
        for us in (1, 10, 100, 1000, 10000):
            h.record(us / 1e6)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["max_ms"] == 10.0
        assert sum(d["buckets"].values()) == 5
        assert h.quantile(0.5) <= h.quantile(0.99)

    def test_service_metrics_dict(self):
        m = ServiceMetrics()
        m.record_op("admit", 0.001)
        m.record_op("admit", 0.002, error=True)
        m.record_batch(3)
        d = m.to_dict()
        assert d["ops"]["admit"] == 2
        assert d["errors"]["admit"] == 1
        assert d["batching"]["max_size"] == 3
        assert d["latency"]["admit"]["count"] == 2


class TestServerOps:
    def test_hello_reports_topology(self):
        server = BrokerServer(MESH)
        resp = server.handle_request({"op": "hello", "id": 1})
        assert resp["ok"] and resp["id"] == 1
        assert resp["nodes"] == 36
        assert resp["topology"] == MESH
        assert isinstance(resp["incremental"], bool)

    def test_admit_assigns_ids_and_closures(self):
        server = BrokerServer(MESH)
        resp = server.handle_request(
            {"op": "admit", "streams": [spec(), spec(src=6, dst=9)]}
        )
        assert resp["ok"] and resp["admitted"]
        assert resp["ids"] == [0, 1]
        assert set(resp["closures"]) == {"0", "1"}
        assert resp["bounds"]["0"] > 0

    def test_admit_rejection_reports_violations(self):
        server = BrokerServer(MESH)
        resp = server.handle_request(
            {"op": "admit", "streams": [spec(deadline=1, length=8)]}
        )
        assert resp["ok"] and not resp["admitted"]
        assert resp["violations"] == [0]
        assert server.handle_request({"op": "report"})["admitted"] == 0

    def test_admit_coordinate_refs(self):
        server = BrokerServer(MESH)
        entry = spec()
        entry["src"] = [0, 0]
        entry["dst"] = [3, 2]
        resp = server.handle_request({"op": "admit", "streams": [entry]})
        assert resp["ok"] and resp["admitted"]

    def test_release_and_query(self):
        server = BrokerServer(MESH)
        server.handle_request({"op": "admit", "streams": [spec()]})
        q = server.handle_request({"op": "query", "stream": 0})
        assert q["ok"] and q["feasible"] and q["closure"] == []
        assert q["stream"]["id"] == 0
        r = server.handle_request({"op": "release", "ids": [0]})
        assert r["ok"] and r["released"] == [0]
        bad = server.handle_request({"op": "release", "ids": [0]})
        assert not bad["ok"] and bad["code"] == "stream"
        assert "0" in bad["error"]

    def test_report_empty_is_trivial_success(self):
        server = BrokerServer(MESH)
        resp = server.handle_request({"op": "report"})
        assert resp["ok"] and resp["report"]["success"]
        assert resp["report"]["streams"] == {}

    def test_malformed_ops_fail_cleanly(self):
        server = BrokerServer(MESH)
        assert not server.handle_request({"op": "admit"})["ok"]
        assert not server.handle_request(
            {"op": "admit", "streams": []})["ok"]
        assert not server.handle_request(
            {"op": "admit", "streams": [{"src": 0}]})["ok"]
        assert not server.handle_request({"op": "release"})["ok"]
        assert not server.handle_request({"op": "query"})["ok"]
        assert not server.handle_request({"op": "query", "stream": 5})["ok"]
        # No state dir -> snapshot is a protocol error.
        resp = server.handle_request({"op": "snapshot"})
        assert not resp["ok"] and resp["code"] == "protocol"

    def test_bad_field_types_fail_cleanly(self):
        # Regression: non-numeric client fields used to raise ValueError
        # past handle_request and kill the worker task.
        server = BrokerServer(MESH)
        server.handle_request({"op": "admit", "streams": [spec()]})
        for request in (
            {"op": "release", "ids": ["abc"]},
            {"op": "release", "ids": [True]},
            {"op": "query", "stream": "x"},
            {"op": "query", "stream": 1.5},
            {"op": "admit", "streams": [spec(sid="abc")]},
            {"op": "admit", "streams": [spec(sid=7, priority="high")]},
        ):
            resp = server.handle_request(request)
            assert not resp["ok"] and resp["code"] == "protocol", request
        # The admitted set is untouched and the server still answers.
        assert server.handle_request({"op": "report"})["admitted"] == 1
        assert server.handle_request({"op": "ping"})["ok"]

    def test_journal_errors_degrade_not_crash(self, tmp_path, monkeypatch):
        # A journal append failure (e.g. disk full) must surface as a
        # 'degraded' error response — rolled back, read-only — never an
        # escaped exception (see tests/test_service_faults.py for the
        # full degraded-mode suite).
        server = BrokerServer(MESH, state_dir=tmp_path / "s")

        def boom(op):
            raise OSError("disk full")

        monkeypatch.setattr(server.state, "append", boom)
        resp = server.handle_request({"op": "admit", "streams": [spec()]})
        assert not resp["ok"] and resp["code"] == "degraded"
        assert server.handle_request({"op": "ping"})["ok"]
        # The failed admit was rolled back: memory matches the journal.
        assert server.handle_request({"op": "report"})["admitted"] == 0

    def test_internal_errors_become_error_responses(self, monkeypatch):
        # A non-journal escape (bug in the engine, say) must still come
        # back as an 'internal' error response, not kill the worker.
        server = BrokerServer(MESH)

        def boom(requests):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(server.engine, "try_admit", boom)
        resp = server.handle_request({"op": "admit", "streams": [spec()]})
        assert not resp["ok"] and resp["code"] == "internal"
        assert server.handle_request({"op": "ping"})["ok"]

    def test_stats_op(self):
        server = BrokerServer(MESH)
        server.handle_request({"op": "admit", "streams": [spec()]})
        resp = server.handle_request({"op": "stats"})
        assert resp["ok"]
        assert resp["admitted"] == 1
        assert resp["engine"]["admits"] == 1
        assert resp["service"]["ops"]["admit"] == 1


class TestPersistence:
    def test_snapshot_journal_recovery(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({"op": "admit", "streams": [spec()]})
        server.handle_request(
            {"op": "admit", "streams": [spec(src=6, dst=9)]})
        server.handle_request({"op": "release", "ids": [0]})
        # Journal-only recovery (no snapshot op was issued).
        recovered = BrokerServer(MESH, state_dir=state)
        assert recovered.engine.admitted.ids() == (1,)
        # Recovery compacts: a third server recovers from snapshot alone.
        assert json.loads(
            (state / "snapshot.json").read_text())["streams"]
        assert (state / "journal.jsonl").read_text() == ""
        again = BrokerServer(MESH, state_dir=state)
        assert again.engine.admitted.ids() == (1,)

    def test_snapshot_op_compacts(self, tmp_path):
        server = BrokerServer(MESH, state_dir=tmp_path / "s")
        server.handle_request({"op": "admit", "streams": [spec()]})
        resp = server.handle_request({"op": "snapshot"})
        assert resp["ok"] and resp["streams"] == 1
        assert (tmp_path / "s" / "journal.jsonl").read_text() == ""

    def test_recovered_ids_stay_monotonic(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({"op": "admit", "streams": [spec()]})
        recovered = BrokerServer(MESH, state_dir=state)
        resp = recovered.handle_request(
            {"op": "admit", "streams": [spec(src=6, dst=9)]})
        assert resp["ids"] == [1]

    def test_released_id_not_reissued_after_restart(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({"op": "admit", "streams": [spec()]})
        server.handle_request(
            {"op": "admit", "streams": [spec(src=6, dst=9)]})
        server.handle_request({"op": "release", "ids": [1]})
        server.handle_request({"op": "snapshot"})
        # The compacted snapshot persists the fresh-id high-water mark...
        assert json.loads(
            (state / "snapshot.json").read_text())["next_id"] == 2
        # ...so a restarted broker never reissues the released id 1.
        recovered = BrokerServer(MESH, state_dir=state)
        resp = recovered.handle_request(
            {"op": "admit", "streams": [spec(src=12, dst=15)]})
        assert resp["ids"] == [2]

    def test_topology_mismatch_refused(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({"op": "admit", "streams": [spec()]})
        server.handle_request({"op": "snapshot"})
        with pytest.raises(ReproError, match="topology"):
            BrokerServer({"type": "mesh", "width": 8, "height": 8},
                         state_dir=state)

    def test_torn_journal_tail_tolerated(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({"op": "admit", "streams": [spec()]})
        server.state.close()
        with open(state / "journal.jsonl", "a") as fh:
            fh.write('{"op": "admit", "streams": [{"tr')  # torn tail
        recovered = BrokerServer(MESH, state_dir=state)
        assert recovered.engine.admitted.ids() == (0,)

    def test_corrupt_journal_interior_rejected(self, tmp_path):
        state = tmp_path / "state"
        BrokerState(state, MESH)
        (state / "journal.jsonl").write_text(
            'garbage\n{"op": "release", "ids": [0]}\n'
        )
        with pytest.raises(ReproError, match="journal"):
            BrokerServer(MESH, state_dir=state)


class TestAsyncFrontEnd:
    """Round-trips through the real asyncio server on a unix socket."""

    def _run(self, client_fn, tmp_path, **server_kwargs):
        sock = str(tmp_path / "broker.sock")
        result = {}

        async def main():
            server = BrokerServer(MESH, **server_kwargs)
            await server.start_unix(sock)
            thread = threading.Thread(
                target=lambda: result.update(client_fn(sock))
            )
            thread.start()
            await asyncio.wait_for(server.serve_forever(), timeout=30)
            thread.join(timeout=10)
            result["server"] = server

        asyncio.run(main())
        return result

    def test_unix_round_trip_and_shutdown(self, tmp_path):
        def client(sock):
            with BrokerClient.wait_for_unix(sock) as c:
                hello = c.check("hello")
                admit = c.check("admit", streams=[spec()])
                report = c.check("report")
                c.check("shutdown")
                return {"hello": hello, "admit": admit, "report": report}

        result = self._run(client, tmp_path)
        assert result["hello"]["nodes"] == 36
        assert result["admit"]["admitted"] and result["admit"]["ids"] == [0]
        assert result["report"]["admitted"] == 1
        metrics = result["server"].metrics
        assert metrics.op_counts["admit"] == 1
        assert metrics.batches >= 1

    def test_malformed_line_gets_error_response(self, tmp_path):
        def client(sock):
            c = BrokerClient.wait_for_unix(sock)
            c._fh.write(b"this is not json\n")
            c._fh.flush()
            raw = json.loads(c._fh.readline())
            ok = c.check("ping")
            c.check("shutdown")
            c.close()
            return {"raw": raw, "ping": ok}

        result = self._run(client, tmp_path)
        assert not result["raw"]["ok"]
        assert result["raw"]["code"] == "protocol"
        assert result["ping"]["ok"]

    def test_bad_field_types_do_not_kill_worker(self, tmp_path):
        # Regression for the worker-death bug: one malformed release used
        # to raise ValueError out of the worker task, wedging the broker.
        def client(sock):
            with BrokerClient.wait_for_unix(sock) as c:
                bad = c.request("release", ids=["abc"])
                ping = c.check("ping")
                c.check("shutdown")
                return {"bad": bad, "ping": ping}

        result = self._run(client, tmp_path)
        assert not result["bad"]["ok"]
        assert result["bad"]["code"] == "protocol"
        assert result["ping"]["ok"]

    def test_half_close_still_gets_responses(self, tmp_path):
        # A client that pipelines requests and then shuts down its write
        # side must still receive every response before EOF.
        import socket as socketmod

        def client(sock):
            c = BrokerClient.wait_for_unix(sock)
            for op in ("hello", "report", "shutdown"):
                c._fh.write(json.dumps({"op": op}).encode() + b"\n")
            c._fh.flush()
            c._sock.shutdown(socketmod.SHUT_WR)
            lines = []
            while True:
                line = c._fh.readline()
                if not line:
                    break
                lines.append(json.loads(line))
            c.close()
            return {"lines": lines}

        result = self._run(client, tmp_path)
        lines = result["lines"]
        assert len(lines) == 3
        assert all(resp["ok"] for resp in lines)
        assert lines[0]["nodes"] == 36
        assert lines[2]["stopping"]

    def test_metrics_scrape_during_shutdown(self, tmp_path):
        # Shutdown-race regression: a stats scrape already queued behind
        # the shutdown op must be answered (the worker drains the queue
        # before stopping), not dropped or hung on.
        def client(sock):
            c = BrokerClient.wait_for_unix(sock)
            for payload in ({"op": "stats", "format": "prometheus"},
                            {"op": "shutdown"},
                            {"op": "stats", "format": "prometheus"}):
                c._fh.write(json.dumps(payload).encode() + b"\n")
            c._fh.flush()
            lines = [json.loads(c._fh.readline()) for _ in range(3)]
            c.close()
            return {"lines": lines}

        result = self._run(client, tmp_path)
        lines = result["lines"]
        assert all(resp["ok"] for resp in lines)
        assert lines[1]["stopping"]
        assert "repro_broker_degraded 0" in lines[2]["prometheus"]

    def test_pipelined_disconnect_retry_no_duplicates(self, tmp_path):
        # A client that pipelines two rid-carrying admits and vanishes
        # after the first response must be able to retry both rids from
        # a fresh connection without any double-apply.
        def client(sock):
            c = BrokerClient.wait_for_unix(sock)
            for i in range(2):
                c._fh.write(json.dumps(
                    {"op": "admit", "rid": f"p{i}",
                     "streams": [spec(src=6 * i, dst=6 * i + 3)]}
                ).encode() + b"\n")
            c._fh.flush()
            first = json.loads(c._fh.readline())
            c.close()  # drop mid-batch: the second ack is lost
            r = BrokerClient.wait_for_unix(sock)
            retries = [
                r.check("admit", rid=f"p{i}",
                        streams=[spec(src=6 * i, dst=6 * i + 3)])
                for i in range(2)
            ]
            report = r.check("report")
            r.check("shutdown")
            r.close()
            return {"first": first, "retries": retries, "report": report}

        result = self._run(client, tmp_path,
                           state_dir=tmp_path / "state")
        assert result["first"]["ok"] and result["first"]["admitted"]
        assert all(r["duplicate"] for r in result["retries"])
        assert result["report"]["admitted"] == 2
        assert result["server"].metrics.duplicates == 2

    def test_retry_client_survives_server_restart(self, tmp_path):
        # request_with_retry across a dropped connection: close the
        # socket under the client, retry the same rid, expect a dedupe.
        def client(sock):
            c = BrokerClient.wait_for_unix(sock)
            first = c.check("admit", rid="rr", streams=[spec()])
            c._sock.close()  # simulate the connection dying under us
            retry = c.request_with_retry(
                "admit", rid="rr", streams=[spec()],
                backoff_base=0.001, backoff_cap=0.01,
            )
            c.check("shutdown")
            c.close()
            return {"first": first, "retry": retry}

        result = self._run(client, tmp_path)
        assert result["first"]["admitted"]
        assert result["retry"]["duplicate"]
        assert result["retry"]["ids"] == result["first"]["ids"]

    def test_load_generator_against_live_server(self, tmp_path):
        def client(sock):
            with BrokerClient.wait_for_unix(sock) as c:
                summary = run_load(c, ops=60, seed=2, target_live=10)
                c.check("shutdown")
                return {"summary": summary}

        result = self._run(client, tmp_path,
                           state_dir=tmp_path / "state")
        summary = result["summary"]
        assert summary.ops == 60 and summary.errors == 0
        assert summary.admits_accepted > 0
        assert summary.server_stats["engine"]["ops"] > 0
        # The committed churn is recoverable.
        recovered = BrokerServer(MESH, state_dir=tmp_path / "state")
        assert len(recovered.engine.admitted) == summary.live_at_end

    def test_pipelined_load_generator(self, tmp_path):
        # Eight requests in flight: the workload must stay well-formed
        # (no errors, only confirmed ids released) and the client must
        # drain its window so the final live count matches the server's.
        def client(sock):
            with BrokerClient.wait_for_unix(sock) as c:
                summary = run_load(c, ops=80, seed=4, target_live=10,
                                   pipeline=8)
                report = c.check("report")
                c.check("shutdown")
                return {"summary": summary, "report": report}

        result = self._run(client, tmp_path)
        summary = result["summary"]
        assert summary.pipeline == 8
        assert summary.ops == 80 and summary.errors == 0
        assert summary.admits_accepted > 0 and summary.releases > 0
        assert result["report"]["admitted"] == summary.live_at_end


class TestChurnSpec:
    def test_specs_are_valid(self):
        import random

        rng = random.Random(0)
        for _ in range(100):
            s = churn_spec(rng, 36)
            assert 0 <= s["src"] < 36 and 0 <= s["dst"] < 36
            assert s["src"] != s["dst"]
            assert 0 < s["deadline"] <= s["period"]


class TestAnalysisSelection:
    """Per-request bound-backend selection through the broker, and its
    persistence across snapshot+journal restarts."""

    def test_hello_lists_backends(self, monkeypatch):
        from repro.core import backends

        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        server = BrokerServer(MESH)
        resp = server.handle_request({"op": "hello", "id": 1})
        assert resp["ok"]
        assert resp["default_analysis"] == "kim98"
        assert {"kim98", "tighter", "buffered"} <= set(resp["analyses"])

    def test_admit_with_each_backend_round_trips(self):
        from repro.core import backends

        server = BrokerServer(MESH)
        src = 0
        for name in backends.names():
            resp = server.handle_request({
                "op": "admit", "analysis": name,
                "streams": [spec(src=src, dst=src + 3)],
            })
            assert resp["ok"] and resp["admitted"], (name, resp)
            assert resp["analysis"] == name
            sid = resp["ids"][0]
            q = server.handle_request({"op": "query", "stream": sid})
            assert q["ok"] and q["analysis"] == name
            src += 6
        report = server.handle_request({"op": "report"})["report"]
        stamped = {entry["analysis"]
                   for entry in report["streams"].values()}
        assert stamped == set(backends.names())

    def test_admit_unknown_backend_is_protocol_error(self):
        server = BrokerServer(MESH)
        resp = server.handle_request({
            "op": "admit", "analysis": "kim99", "streams": [spec()],
        })
        assert not resp["ok"] and resp["code"] == "protocol"
        assert "kim99" in resp["error"] and "kim98" in resp["error"]
        # Nothing was admitted by the failed request.
        assert server.handle_request({"op": "report"})["admitted"] == 0

    def test_admit_non_string_backend_rejected(self):
        server = BrokerServer(MESH)
        resp = server.handle_request({
            "op": "admit", "analysis": 7, "streams": [spec()],
        })
        assert not resp["ok"] and resp["code"] == "protocol"

    def test_journal_records_resolved_backend(self, tmp_path, monkeypatch):
        from repro.core import backends

        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({
            "op": "admit", "analysis": "tighter", "streams": [spec()],
        })
        server.handle_request({"op": "admit", "streams": [spec(src=6, dst=9)]})
        ops = [json.loads(line) for line in
               (state / "journal.jsonl").read_text().splitlines()]
        assert ops[0]["analysis"] == "tighter"
        # The engine default is resolved at admit time, not replay time.
        assert ops[1]["analysis"] == "kim98"

    def test_backends_survive_journal_replay(self, tmp_path):
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({
            "op": "admit", "analysis": "tighter", "streams": [spec()],
        })
        server.handle_request({
            "op": "admit", "analysis": "buffered",
            "streams": [spec(src=6, dst=9)],
        })
        recovered = BrokerServer(MESH, state_dir=state)
        assert recovered.engine.analysis_of(0) == "tighter"
        assert recovered.engine.analysis_of(1) == "buffered"
        q = recovered.handle_request({"op": "query", "stream": 0})
        assert q["analysis"] == "tighter"

    def test_backends_survive_snapshot_restart(self, tmp_path, monkeypatch):
        from repro.core import backends

        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        state = tmp_path / "state"
        server = BrokerServer(MESH, state_dir=state)
        server.handle_request({
            "op": "admit", "analysis": "tighter", "streams": [spec()],
        })
        server.handle_request({
            "op": "admit", "streams": [spec(src=6, dst=9)],
        })
        server.handle_request({"op": "snapshot"})
        snap = json.loads((state / "snapshot.json").read_text())
        assert {e["id"]: e.get("analysis") for e in snap["streams"]} == {
            0: "tighter", 1: "kim98",
        }
        # Snapshot-only recovery (journal was compacted away).
        recovered = BrokerServer(MESH, state_dir=state)
        assert recovered.engine.analysis_of(0) == "tighter"
        assert recovered.engine.analysis_of(1) == "kim98"
        report = recovered.handle_request({"op": "report"})["report"]
        assert report["streams"]["0"]["analysis"] == "tighter"
        assert report["streams"]["1"]["analysis"] == "kim98"

    def test_server_analysis_default_applies_to_plain_admits(self):
        server = BrokerServer(MESH, analysis="tighter")
        resp = server.handle_request({"op": "hello"})
        assert resp["default_analysis"] == "tighter"
        admit = server.handle_request({"op": "admit", "streams": [spec()]})
        assert admit["ok"] and admit["analysis"] == "tighter"
