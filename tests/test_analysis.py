"""Unit tests for the evaluation harness (repro.analysis)."""

import pytest

from repro.analysis import (
    PAPER_TABLES,
    format_rule_sweep,
    format_table,
    inflate_periods,
    priority_rule_sweep,
    ratio_by_priority,
    run_paper_table,
    run_table_experiment,
    stream_ratios,
)
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError
from repro.sim.flit import Message
from repro.sim.stats import StatsCollector
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def _collector(samples):
    """Build a StatsCollector from {stream_id: (priority, [delays])}."""
    c = StatsCollector()
    mid = 0
    for sid, (prio, delays) in samples.items():
        for d in delays:
            m = Message(mid, sid, prio, src=0, dst=1, length=1, release=0,
                        path=(0, 1))
            m.finish = d
            c.record(m)
            mid += 1
    return c


def ms(i, priority, period=100):
    return MessageStream(i, 0, 1, priority=priority, period=period,
                         length=10, deadline=period, latency=10)


class TestStreamRatios:
    def test_basic_ratio(self):
        streams = StreamSet([ms(0, 1), ms(1, 2)])
        stats = _collector({0: (1, [50]), 1: (2, [20, 40])})
        r = stream_ratios(streams, {0: 100, 1: 60}, stats)
        assert r[0] == pytest.approx(0.5)
        assert r[1] == pytest.approx(0.5)

    def test_unbounded_maps_to_zero(self):
        streams = StreamSet([ms(0, 1)])
        stats = _collector({0: (1, [50])})
        r = stream_ratios(streams, {0: -1}, stats)
        assert r[0] == 0.0

    def test_silent_stream_skipped(self):
        streams = StreamSet([ms(0, 1), ms(1, 1)])
        stats = _collector({0: (1, [50])})
        r = stream_ratios(streams, {0: 100, 1: 100}, stats)
        assert set(r) == {0}

    def test_missing_bound_rejected(self):
        streams = StreamSet([ms(0, 1)])
        stats = _collector({0: (1, [50])})
        with pytest.raises(AnalysisError):
            stream_ratios(streams, {}, stats)


class TestRatioByPriority:
    def test_pooling(self):
        streams = StreamSet([ms(0, 1), ms(1, 1), ms(2, 2)])
        stats = _collector({
            0: (1, [50]), 1: (1, [100]), 2: (2, [90]),
        })
        rows = ratio_by_priority(streams, {0: 100, 1: 100, 2: 100}, stats)
        assert rows[1].num_streams == 2
        assert rows[1].mean == pytest.approx(0.75)
        assert rows[1].minimum == pytest.approx(0.5)
        assert rows[2].mean == pytest.approx(0.9)

    def test_unbounded_counted(self):
        streams = StreamSet([ms(0, 1), ms(1, 1)])
        stats = _collector({0: (1, [50]), 1: (1, [50])})
        rows = ratio_by_priority(streams, {0: 100, 1: -1}, stats)
        assert rows[1].num_unbounded == 1
        assert rows[1].minimum == 0.0


class TestInflation:
    def test_no_change_when_bounds_fit(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=1, period=1000, length=10, deadline=1000),
        ])
        result = inflate_periods(streams, rt)
        assert result.converged
        assert result.inflated == {}
        assert result.streams[0].period == 1000

    def test_period_raised_to_bound(self, net):
        mesh, rt = net
        # High-priority hog forces the low stream's bound past its period.
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=2, period=20, length=15, deadline=20),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(6, 0),
                          priority=1, period=30, length=10, deadline=30),
        ])
        result = inflate_periods(streams, rt)
        assert result.converged
        assert 1 in result.inflated
        orig, final = result.inflated[1]
        assert orig == 30 and final > 30
        assert result.upper_bounds[1] <= final

    def test_final_bounds_consistent_with_final_periods(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=2, period=20, length=15, deadline=20),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(6, 0),
                          priority=1, period=30, length=10, deadline=30),
        ])
        result = inflate_periods(streams, rt)
        from repro.core.feasibility import FeasibilityAnalyzer

        recheck = FeasibilityAnalyzer(result.streams, rt).all_upper_bounds()
        assert recheck == result.upper_bounds
        # At the fixpoint every bound fits inside its (possibly raised) period.
        for sid, u in recheck.items():
            assert 0 < u <= result.streams[sid].period


class TestTableRunners:
    def test_small_table_end_to_end(self):
        r = run_table_experiment(
            name="mini", num_streams=8, priority_levels=2, seed=0,
            sim_time=6_000, warmup=500,
        )
        assert set(r.rows).issubset({1, 2})
        for stats in r.rows.values():
            assert 0.0 <= stats.mean <= 1.0
        assert r.highest_priority_ratio() >= 0.0
        out = format_table(r)
        assert "mini" in out and "P" in out

    def test_bounds_hold_in_simulation(self):
        """Integration: on a moderate workload no measured delay may exceed
        its stream's computed bound."""
        r = run_table_experiment(
            name="sound", num_streams=15, priority_levels=4, seed=3,
            sim_time=15_000, warmup=1_000,
        )
        for sid in r.stats.stream_ids():
            u = r.upper_bounds[sid]
            if u > 0:
                assert r.stats.max_delay(sid) <= u

    def test_paper_table_names(self):
        assert set(PAPER_TABLES) == {
            "table1", "table2", "table3", "table4", "table5",
        }
        with pytest.raises(AnalysisError):
            run_paper_table("table9")

    def test_rule_sweep_format(self):
        results = priority_rule_sweep(
            num_streams=8, levels=(1, 2), seed=0,
            sim_time=4_000, warmup=500,
        )
        out = format_rule_sweep(results)
        assert "|M| = 8" in out
        assert format_rule_sweep({}) == "(empty sweep)"
