"""Seeded 200-problem cross-backend fuzz regression.

Pins the differential invariants between the registered bound backends
over a fixed seed range, so a regression in any backend (or in the
shared structure-building path) fails deterministically in CI rather
than probabilistically in a nightly campaign.

Two tiers:

* the fast tier re-runs the *analysis only* (no simulation) on all 200
  seeds and asserts refinement monotonicity (``tighter`` ≤ ``kim98``
  bound-wise, admitted ⊇ set-wise), buffered pessimism, and per-backend
  digest determinism across independent analyzer constructions;
* the ``-m slow`` tier (nightly) runs the full oracle — simulation
  included — so every backend's bound is also checked against observed
  latencies (dominance) on the same 200 problems.
"""

import pytest

from repro.core import backends
from repro.fuzz import GeneratorConfig, bounds_digest, generate_case, run_case
from repro.fuzz.oracle import _admitted, _analysis_bounds

SEEDS = range(200)
CONFIG = GeneratorConfig()


def _case_backend_bounds(case):
    out = {}
    hp_ids = None
    for name in backends.names():
        bounds, hp = _analysis_bounds(case, name)
        out[name] = bounds
        if hp_ids is None:
            hp_ids = hp
    return out, hp_ids


class TestFastTier:
    def test_200_seed_monotonicity_and_digests(self):
        checked_pairs = 0
        strictly_tighter = 0
        for seed in SEEDS:
            case = generate_case(seed, CONFIG)
            per_backend, hp_ids = _case_backend_bounds(case)

            # Digest determinism: an independent reconstruction of every
            # analyzer must reproduce the identical verdict digest.
            for name, bounds in per_backend.items():
                again, _ = _analysis_bounds(case, name)
                assert bounds_digest(again) == bounds_digest(bounds), (
                    f"seed {seed}: {name} digest not deterministic"
                )

            # Refinement monotonicity on bounds and admitted sets.
            for name in backends.names():
                ref = backends.get(name).refines
                if ref is None:
                    continue
                ref_bounds = per_backend[ref]
                own_bounds = per_backend[name]
                for sid, u_ref in ref_bounds.items():
                    if u_ref > 0:
                        checked_pairs += 1
                        assert 0 < own_bounds[sid] <= u_ref, (
                            f"seed {seed}: {name} bound "
                            f"{own_bounds[sid]} looser than {ref} "
                            f"{u_ref} for stream {sid}"
                        )
                        if own_bounds[sid] < u_ref:
                            strictly_tighter += 1
                assert (set(_admitted(case, ref_bounds, hp_ids))
                        <= set(_admitted(case, own_bounds, hp_ids))), (
                    f"seed {seed}: {name} rejects a set {ref} admits"
                )

            # Buffered pessimism relative to the reference analysis.
            kim = per_backend["kim98"]
            buf = per_backend["buffered"]
            for sid, u in buf.items():
                if u > 0:
                    assert u >= kim[sid], (
                        f"seed {seed}: buffered bound {u} tighter than "
                        f"kim98 {kim[sid]} for stream {sid}"
                    )
        assert checked_pairs > 300, "campaign degenerated: too few checks"

    def test_refinement_declared(self):
        # The invariant above is only meaningful while tighter actually
        # declares the refinement the oracle enforces.
        assert backends.get("tighter").refines == "kim98"


@pytest.mark.slow
class TestNightlyTier:
    def test_200_seed_full_oracle(self):
        """Full differential pipeline per seed: per-backend soundness
        against the simulator, divergence, determinism, monotonicity."""
        bad = []
        for seed in SEEDS:
            result = run_case(generate_case(seed, CONFIG))
            if not result.ok:
                bad.append((seed, result.kinds(),
                            [v.detail for v in result.violations][:3]))
        assert not bad, bad
