"""Unit tests for the simulation kernel (repro.sim.engine)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import SimulationKernel


class RecordingKernel(SimulationKernel):
    """Minimal kernel: payloads become 'work units' that each take one
    cycle to complete; used to test clocking, injection and idle skip."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.backlog = 0
        self.injected_at = []
        self.stepped_at = []
        self.freeze = False  # when True, _step commits nothing

    def _has_work(self):
        return self.backlog > 0

    def _inject(self, payloads):
        for p in payloads:
            self.backlog += 1
            self.injected_at.append((self.now, p))

    def _step(self):
        self.stepped_at.append(self.now)
        if self.freeze or self.backlog == 0:
            return 0
        self.backlog -= 1
        return 1


class TestScheduling:
    def test_payload_available_next_cycle(self):
        k = RecordingKernel()
        k.schedule(5, "a")
        k.run(10)
        assert k.injected_at == [(6, "a")]

    def test_schedule_in_past_rejected(self):
        k = RecordingKernel()
        k.run(10)
        with pytest.raises(SimulationError):
            k.schedule(3, "late")

    def test_fifo_among_equal_times(self):
        k = RecordingKernel()
        k.schedule(0, "a")
        k.schedule(0, "b")
        k.run(2)
        assert [p for _, p in k.injected_at] == ["a", "b"]

    def test_next_release(self):
        k = RecordingKernel()
        assert k.next_release() is None
        k.schedule(7, "x")
        assert k.next_release() == 7


class TestIdleSkip:
    def test_skips_idle_gap(self):
        k = RecordingKernel()
        k.schedule(1000, "a")
        k.run(2000)
        # No cycles are stepped before the release becomes available.
        assert k.stepped_at[0] == 1001
        assert len(k.stepped_at) == 1  # one unit of work = one busy cycle

    def test_clock_lands_on_until_when_idle(self):
        k = RecordingKernel()
        k.run(500)
        assert k.now == 500
        k.schedule(10_000, "later")
        k.run(600)
        assert k.now == 600
        assert k.injected_at == []

    def test_run_backwards_rejected(self):
        k = RecordingKernel()
        k.run(10)
        with pytest.raises(SimulationError):
            k.run(5)

    def test_incremental_runs_accumulate(self):
        k = RecordingKernel()
        k.schedule(0, "a")
        k.schedule(3, "b")
        k.run(2)
        assert k.backlog == 0 and len(k.injected_at) == 1
        k.run(10)
        assert len(k.injected_at) == 2


class TestWatchdog:
    def test_detects_stall(self):
        k = RecordingKernel(watchdog_cycles=10)
        k.schedule(0, "a")
        k.freeze = True
        with pytest.raises(DeadlockError):
            k.run(100)

    def test_progress_resets_watchdog(self):
        k = RecordingKernel(watchdog_cycles=3)
        for t in range(0, 40, 2):
            k.schedule(t, f"p{t}")
        k.run(50)  # alternating busy/idle cycles never trip the watchdog
        assert k.backlog == 0

    def test_disabled_watchdog(self):
        k = RecordingKernel(watchdog_cycles=0)
        k.schedule(0, "a")
        k.freeze = True
        k.run(200)  # runs to completion without raising
        assert k.backlog == 1

    def test_negative_watchdog_rejected(self):
        with pytest.raises(SimulationError):
            RecordingKernel(watchdog_cycles=-1)
