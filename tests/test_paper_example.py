"""End-to-end reproduction of the paper's section 4.4 worked example.

This is the calibration anchor of the whole reproduction: with the HP sets
exactly as printed in the paper, the pipeline must return
``U = (7, 8, 26, 20, 33)``, the initial (direct-only) diagram of ``HP_4``
must show exactly 7 free slots (Fig. 7), ``Modify_Diagram`` must remove the
2nd and 3rd instances of ``M_0`` and the 4th instance of ``M_1`` and compact
``M_3``'s first instance (Fig. 9).
"""

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from tests.conftest import PAPER_EXAMPLE_U


@pytest.fixture()
def analyzer(paper_streams, xy10, paper_hp_override):
    return FeasibilityAnalyzer(
        paper_streams, xy10, hp_override=paper_hp_override
    )


class TestSection44:
    def test_latencies_match_printed_values(self, paper_streams, xy10):
        # L = hops + C - 1 recovers every printed latency.
        expected = {0: 7, 1: 8, 2: 12, 3: 16, 4: 10}
        for sid, latency in expected.items():
            s = paper_streams[sid]
            hops = xy10.hop_count(s.src, s.dst)
            assert hops + s.length - 1 == latency == s.latency

    def test_final_upper_bounds(self, analyzer):
        report = analyzer.determine_feasibility()
        assert report.upper_bounds() == PAPER_EXAMPLE_U
        assert report.success

    def test_fig7_initial_diagram_has_seven_free_slots(self, analyzer):
        diagram, _ = analyzer.diagram_for(4, apply_modify=False)
        assert diagram.num_free_slots() == 7
        # 7 < L_4 = 10: the direct-only diagram cannot guarantee M4.
        assert diagram.upper_bound(10) == -1

    def test_fig9_released_instances(self, analyzer):
        diagram, removed = analyzer.diagram_for(4)
        assert removed == {0: {1, 2}, 1: {3}}

    def test_fig9_m3_first_instance_compacted(self, analyzer):
        diagram, _ = analyzer.diagram_for(4)
        first = diagram.instances[3][0]
        # Released slots 16-19 (M0's removed instance) are reused; M3's
        # nine flits now occupy 13-20 and 23 instead of 13-15,20,23-27.
        assert first.allocated == (13, 14, 15, 16, 17, 18, 19, 20, 23)

    def test_fig9_bound(self, analyzer):
        diagram, _ = analyzer.diagram_for(4)
        assert diagram.upper_bound(10) == 33

    def test_all_bounds_within_deadlines(self, analyzer):
        report = analyzer.determine_feasibility()
        for sid, verdict in report.verdicts.items():
            assert verdict.feasible
            assert verdict.upper_bound <= verdict.stream.deadline

    def test_highest_priority_bound_is_latency(self, analyzer):
        # M0 (highest priority) can never be blocked: U_0 = L_0.
        assert analyzer.cal_u(0).upper_bound == 7

    def test_computed_hp_sets_differ_only_at_documented_spot(
        self, paper_streams, xy10, paper_hp_override
    ):
        """Without the override, the path-overlap rule adds M2 to HP_3 (a
        genuine overlap of the printed coordinates) which cascades into
        HP_4's intermediates; the resulting bounds differ only for M4."""
        computed = FeasibilityAnalyzer(paper_streams, xy10)
        report = computed.determine_feasibility()
        bounds = report.upper_bounds()
        assert bounds[0] == PAPER_EXAMPLE_U[0]
        assert bounds[1] == PAPER_EXAMPLE_U[1]
        assert bounds[2] == PAPER_EXAMPLE_U[2]
        # M3: M2's genuine path overlap (plus M0 indirectly through it)
        # raises the bound from the paper's 20 to 30.
        assert bounds[3] == 30
        # M4: the extra intermediate (M3) blocks the release of M0's second
        # instance, pushing the bound from 33 to 37.
        assert bounds[4] == 37

    def test_printed_hp3_is_unsound_for_printed_coordinates(
        self, mesh10, xy10, paper_streams, paper_hp_override
    ):
        """Reproduction finding: simulating the printed streams produces a
        delay for M3 above the paper's U_3 = 20 (M2 really blocks M3), so
        the printed HP_3 = {M1} cannot be correct for the printed
        coordinates. The overlap-derived bound (30) does hold."""
        from repro.sim import WormholeSimulator

        sim = WormholeSimulator(mesh10, xy10, paper_streams)
        stats = sim.simulate_streams(3_000)
        assert stats.max_delay(3) > 20
        assert stats.max_delay(3) <= 30


class TestSimulationAgainstExampleBounds:
    def test_observed_delays_never_exceed_bounds(
        self, mesh10, xy10, paper_streams, paper_hp_override
    ):
        """Soundness on the worked example: simulate the five streams from
        the critical instant and check every measured delay against the
        overlap-derived bounds (the printed HP_3 is unsound; see above)."""
        from repro.sim import WormholeSimulator

        analyzer = FeasibilityAnalyzer(paper_streams, xy10)
        bounds = analyzer.determine_feasibility().upper_bounds()
        sim = WormholeSimulator(mesh10, xy10, paper_streams)
        stats = sim.simulate_streams(3_000)
        for sid in stats.stream_ids():
            assert stats.max_delay(sid) <= bounds[sid], (
                f"stream {sid}: observed {stats.max_delay(sid)} "
                f"> U = {bounds[sid]}"
            )
