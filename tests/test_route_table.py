"""Shared route tables: all-pairs parity with the routing functions.

The table is pure memoisation — every entry must equal what
``RoutingAlgorithm.route_channels`` computes, for every (src, dst) pair
on every supported topology family, and clearing it (the chaos
``cache_storm`` path) must never change a subsequent answer. Sharing is
keyed on structure: two engines over structurally identical networks
must hit the same table object, distinct shapes must not.
"""

import pytest

from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh2D
from repro.topology.route_table import (
    RouteTable,
    clear_shared_route_tables,
    shared_route_table,
)
from repro.topology.routing import (
    ECubeRouting,
    TorusDimensionOrderRouting,
    XYRouting,
)
from repro.topology.torus import Torus


def _routings():
    return {
        "mesh_xy": XYRouting(Mesh2D(4, 4)),
        "torus_dor": TorusDimensionOrderRouting(Torus([4, 3])),
        "hypercube_ecube": ECubeRouting(Hypercube(3)),
    }


@pytest.fixture(autouse=True)
def _fresh_shared_tables():
    clear_shared_route_tables()
    yield
    clear_shared_route_tables()


class TestAllPairsParity:
    @pytest.mark.parametrize("name", sorted(_routings()))
    def test_every_pair_matches_routing(self, name):
        routing = _routings()[name]
        table = RouteTable(routing)
        n = routing.topology.num_nodes
        for src in range(n):
            for dst in range(n):
                expected = frozenset(routing.route_channels(src, dst))
                got, was_cached = table.lookup(src, dst)
                assert not was_cached
                assert got == expected
                # Second lookup is a hit and returns the same object.
                again, was_cached = table.lookup(src, dst)
                assert was_cached and again is got
        assert len(table) == n * n

    @pytest.mark.parametrize("name", sorted(_routings()))
    def test_clear_then_recompute_is_identical(self, name):
        routing = _routings()[name]
        table = RouteTable(routing)
        n = routing.topology.num_nodes
        warm = {
            (s, d): table.channels(s, d)
            for s in range(n) for d in range(n)
        }
        table.clear()
        assert len(table) == 0
        for (s, d), chans in warm.items():
            assert table.channels(s, d) == chans
        assert len(table) == n * n


class TestSharing:
    def test_identical_structures_share_one_table(self):
        a = shared_route_table(XYRouting(Mesh2D(5, 4)))
        b = shared_route_table(XYRouting(Mesh2D(5, 4)))
        assert a is b
        # One engine's lookups warm the other's.
        chans, was_cached = a.lookup(0, 7)
        assert not was_cached
        again, was_cached = b.lookup(0, 7)
        assert was_cached and again is chans

    def test_distinct_shapes_get_distinct_tables(self):
        a = shared_route_table(XYRouting(Mesh2D(5, 4)))
        b = shared_route_table(XYRouting(Mesh2D(4, 5)))
        assert a is not b

    def test_distinct_routing_classes_get_distinct_tables(self):
        torus = Torus([4, 3])
        mesh = Mesh2D(4, 3)
        a = shared_route_table(TorusDimensionOrderRouting(torus))
        b = shared_route_table(XYRouting(mesh))
        assert a is not b

    def test_clear_shared_forgets_everything(self):
        a = shared_route_table(XYRouting(Mesh2D(3, 3)))
        clear_shared_route_tables()
        b = shared_route_table(XYRouting(Mesh2D(3, 3)))
        assert a is not b
