"""Unix-socket lifecycle: stale-socket reclaim, live-socket refusal,
and unlink-on-clean-shutdown (``repro serve --socket``).

A crashed broker leaves its socket file behind; ``bind`` then fails
with ``EADDRINUSE`` even though nothing is listening. The server now
probes the path before binding: connect-refused means stale (reclaim),
connect-accepted means a live broker owns it (refuse with a clear
error), and a non-socket file is never deleted.
"""

import asyncio
import socket
import threading

import pytest

from repro.errors import ReproError
from repro.fleet.workers import WorkerSupervisor
from repro.service.loadgen import BrokerClient
from repro.service.server import BrokerServer

MESH = {"type": "mesh", "width": 4, "height": 4}


def make_stale_socket(path):
    """Bind a unix socket at ``path`` and close it without unlinking —
    exactly the residue a SIGKILLed broker leaves."""
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.bind(str(path))
    s.close()
    assert path.exists()


class TestStaleSocket:
    def test_stale_socket_is_reclaimed(self, tmp_path):
        sock = tmp_path / "broker.sock"
        make_stale_socket(sock)

        async def main():
            server = BrokerServer(MESH)
            await server.start_unix(str(sock))

            def client():
                with BrokerClient.wait_for_unix(str(sock)) as c:
                    out = c.check("ping")
                    c.check("shutdown")
                    return out

            thread_result = {}
            thread = threading.Thread(
                target=lambda: thread_result.update(client())
            )
            thread.start()
            await asyncio.wait_for(server.serve_forever(), timeout=30)
            thread.join(timeout=10)
            return thread_result

        result = asyncio.run(main())
        assert result["ok"]

    def test_live_socket_is_refused(self, tmp_path):
        sock = tmp_path / "broker.sock"

        async def main():
            first = BrokerServer(MESH)
            await first.start_unix(str(sock))
            second = BrokerServer(MESH)
            with pytest.raises(ReproError, match="live broker"):
                await second.start_unix(str(sock))
            await first.aclose()
            # The refusal must not have deleted the live socket out from
            # under the first server before it closed...
            # (aclose unlinks it; see the shutdown test below.)

        asyncio.run(main())

    def test_non_socket_file_is_never_deleted(self, tmp_path):
        path = tmp_path / "broker.sock"
        path.write_text("precious data, definitely not a socket\n")

        async def main():
            server = BrokerServer(MESH)
            with pytest.raises(ReproError, match="not a socket"):
                await server.start_unix(str(path))

        asyncio.run(main())
        assert path.read_text().startswith("precious data")

    def test_clean_shutdown_unlinks_socket(self, tmp_path):
        sock = tmp_path / "broker.sock"

        async def main():
            server = BrokerServer(MESH)
            await server.start_unix(str(sock))
            assert sock.exists()
            await server.aclose()

        asyncio.run(main())
        assert not sock.exists(), "clean shutdown must remove the socket"

    def test_restart_after_clean_shutdown(self, tmp_path):
        """Stop-then-start on the same path needs no manual cleanup."""
        sock = tmp_path / "broker.sock"

        async def cycle():
            server = BrokerServer(MESH)
            await server.start_unix(str(sock))
            await server.aclose()

        asyncio.run(cycle())
        asyncio.run(cycle())
        assert not sock.exists()


def make_supervisor(tmp_path, workers=1):
    """A one-shard supervisor, assigned but not yet started."""
    sup = WorkerSupervisor(tmp_path, workers)
    sup.assign_tenant("t", {
        "t/shard-0": {
            "state_dir": str(tmp_path / "t" / "shard-0"),
            "topology": MESH,
        },
    })
    return sup


class TestWorkerSocketLifecycle:
    """The fleet workers apply the same hygiene rules as the broker —
    on their per-worker supervisor sockets, across process spawns."""

    def test_stale_socket_is_reclaimed_on_spawn(self, tmp_path):
        sup = make_supervisor(tmp_path)
        make_stale_socket(sup.workers[0].socket_path)
        sup.start()
        try:
            assert sup.workers[0].alive
            assert sup.workers[0].responsive()
        finally:
            sup.stop()

    def test_live_socket_is_refused_by_spawn(self, tmp_path):
        sup = make_supervisor(tmp_path)
        path = sup.workers[0].socket_path
        holder = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        holder.bind(str(path))
        holder.listen(1)
        try:
            # The child's bind hygiene trips, the child exits nonzero,
            # and spawn surfaces its log (which names the live owner).
            with pytest.raises(ReproError, match="live broker"):
                sup.start()
            # ...without having deleted the live socket underneath us.
            assert path.exists()
        finally:
            holder.close()
            sup.stop()

    def test_non_socket_file_is_never_deleted_by_spawn(self, tmp_path):
        sup = make_supervisor(tmp_path)
        path = sup.workers[0].socket_path
        path.write_text("precious data, definitely not a socket\n")
        with pytest.raises(ReproError, match="not a socket"):
            sup.start()
        sup.stop()
        assert path.read_text().startswith("precious data")

    def test_clean_stop_unlinks_worker_socket(self, tmp_path):
        sup = make_supervisor(tmp_path)
        sup.start()
        path = sup.workers[0].socket_path
        assert path.exists()
        sup.stop()
        assert not path.exists(), "clean shutdown must remove the socket"

    def test_sigkill_leaves_socket_and_respawn_reclaims(self, tmp_path):
        """The crash residue the hygiene exists for, end to end: a
        SIGKILLed worker leaves its socket behind; the supervised
        respawn reclaims it and serves again on the same path."""
        sup = make_supervisor(tmp_path)
        sup.start()
        try:
            path = sup.workers[0].socket_path
            sup.kill_worker(0)
            assert path.exists(), "SIGKILL should leave the socket file"
            assert not sup.workers[0].responsive()
            assert sup.ensure_all() == 1
            assert sup.workers[0].responsive()
            assert path.exists()
        finally:
            sup.stop()

    def test_restart_cycle_needs_no_manual_cleanup(self, tmp_path):
        for _ in range(2):
            sup = make_supervisor(tmp_path)
            sup.start()
            sup.stop()
            assert not sup.workers[0].socket_path.exists()
