"""Unix-socket lifecycle: stale-socket reclaim, live-socket refusal,
and unlink-on-clean-shutdown (``repro serve --socket``).

A crashed broker leaves its socket file behind; ``bind`` then fails
with ``EADDRINUSE`` even though nothing is listening. The server now
probes the path before binding: connect-refused means stale (reclaim),
connect-accepted means a live broker owns it (refuse with a clear
error), and a non-socket file is never deleted.
"""

import asyncio
import socket
import threading

import pytest

from repro.errors import ReproError
from repro.service.loadgen import BrokerClient
from repro.service.server import BrokerServer

MESH = {"type": "mesh", "width": 4, "height": 4}


def make_stale_socket(path):
    """Bind a unix socket at ``path`` and close it without unlinking —
    exactly the residue a SIGKILLed broker leaves."""
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.bind(str(path))
    s.close()
    assert path.exists()


class TestStaleSocket:
    def test_stale_socket_is_reclaimed(self, tmp_path):
        sock = tmp_path / "broker.sock"
        make_stale_socket(sock)

        async def main():
            server = BrokerServer(MESH)
            await server.start_unix(str(sock))

            def client():
                with BrokerClient.wait_for_unix(str(sock)) as c:
                    out = c.check("ping")
                    c.check("shutdown")
                    return out

            thread_result = {}
            thread = threading.Thread(
                target=lambda: thread_result.update(client())
            )
            thread.start()
            await asyncio.wait_for(server.serve_forever(), timeout=30)
            thread.join(timeout=10)
            return thread_result

        result = asyncio.run(main())
        assert result["ok"]

    def test_live_socket_is_refused(self, tmp_path):
        sock = tmp_path / "broker.sock"

        async def main():
            first = BrokerServer(MESH)
            await first.start_unix(str(sock))
            second = BrokerServer(MESH)
            with pytest.raises(ReproError, match="live broker"):
                await second.start_unix(str(sock))
            await first.aclose()
            # The refusal must not have deleted the live socket out from
            # under the first server before it closed...
            # (aclose unlinks it; see the shutdown test below.)

        asyncio.run(main())

    def test_non_socket_file_is_never_deleted(self, tmp_path):
        path = tmp_path / "broker.sock"
        path.write_text("precious data, definitely not a socket\n")

        async def main():
            server = BrokerServer(MESH)
            with pytest.raises(ReproError, match="not a socket"):
                await server.start_unix(str(path))

        asyncio.run(main())
        assert path.read_text().startswith("precious data")

    def test_clean_shutdown_unlinks_socket(self, tmp_path):
        sock = tmp_path / "broker.sock"

        async def main():
            server = BrokerServer(MESH)
            await server.start_unix(str(sock))
            assert sock.exists()
            await server.aclose()

        asyncio.run(main())
        assert not sock.exists(), "clean shutdown must remove the socket"

    def test_restart_after_clean_shutdown(self, tmp_path):
        """Stop-then-start on the same path needs no manual cleanup."""
        sock = tmp_path / "broker.sock"

        async def cycle():
            server = BrokerServer(MESH)
            await server.start_unix(str(sock))
            await server.aclose()

        asyncio.run(cycle())
        asyncio.run(cycle())
        assert not sock.exists()
