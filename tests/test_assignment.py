"""Unit tests for priority assignment (repro.core.assignment)."""

import pytest

from repro.core.assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    group_into_levels,
    rate_monotonic_assignment,
)
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError
from repro.sim import PaperWorkload
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, period, deadline=None, length=10, priority=1):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=deadline or period)


class TestRankedAssignments:
    def test_rate_monotonic_order(self, net):
        mesh, _ = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (3, 0), period=300),
            ms(1, mesh, (0, 1), (3, 1), period=100),
            ms(2, mesh, (0, 2), (3, 2), period=200),
        ])
        out = rate_monotonic_assignment(streams)
        assert out[1].priority > out[2].priority > out[0].priority
        assert {s.priority for s in out} == {1, 2, 3}

    def test_deadline_monotonic_order(self, net):
        mesh, _ = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (3, 0), period=300, deadline=50),
            ms(1, mesh, (0, 1), (3, 1), period=100, deadline=90),
        ])
        out = deadline_monotonic_assignment(streams)
        assert out[0].priority > out[1].priority

    def test_ties_broken_by_id(self, net):
        mesh, _ = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (3, 0), period=100),
            ms(1, mesh, (0, 1), (3, 1), period=100),
        ])
        out = rate_monotonic_assignment(streams)
        assert out[0].priority > out[1].priority

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            rate_monotonic_assignment(StreamSet())
        with pytest.raises(AnalysisError):
            deadline_monotonic_assignment(StreamSet())


class TestAudsley:
    def test_assignment_is_feasible(self, net):
        mesh, rt = net
        wl = PaperWorkload(num_streams=10, priority_levels=1, seed=4,
                           period_range=(200, 500))
        streams = wl.generate(mesh)
        assigned = audsley_assignment(streams, rt)
        assert assigned is not None
        report = FeasibilityAnalyzer(assigned, rt).determine_feasibility()
        assert report.success
        # Distinct priorities 1..n.
        assert sorted(s.priority for s in assigned) == list(range(1, 11))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_succeeds_whenever_dm_does(self, net, seed):
        """Empirical compatibility: on random workloads with feasible DM
        assignments, OPA also certifies an assignment. (Neither policy is
        provably optimal under this analysis — a stream's bound can depend
        on the *order* of the streams above it through blocking chains,
        which breaks both DM's transposition argument and OPA's
        applicability condition; see test_chain_order_dependence.)"""
        mesh, rt = net
        wl = PaperWorkload(num_streams=8, priority_levels=1, seed=seed,
                           period_range=(200, 500))
        streams = wl.generate(mesh)
        dm = deadline_monotonic_assignment(streams)
        dm_ok = FeasibilityAnalyzer(dm, rt).determine_feasibility().success
        opa = audsley_assignment(streams, rt)
        if dm_ok:
            assert opa is not None
            assert FeasibilityAnalyzer(
                opa, rt
            ).determine_feasibility().success

    def test_chain_order_dependence(self, net):
        """Why assignment is subtle here: with a chain A-B-C (A overlaps
        B, B overlaps C, A and C disjoint), C's bound depends on the
        relative order of A and B above it — indirect interference is not
        a function of the *set* of higher-priority streams alone."""
        import dataclasses

        mesh, rt = net
        base = [
            ms(0, mesh, (0, 0), (4, 0), period=1000, length=20),   # A
            ms(1, mesh, (1, 0), (5, 0), period=1000, length=10),   # B
            ms(2, mesh, (4, 0), (8, 0), period=1000, length=20),   # C
        ]

        def u_of_c(order):
            prios = {sid: 3 - order.index(sid) for sid in range(3)}
            ss = StreamSet([
                dataclasses.replace(s, priority=prios[s.stream_id])
                for s in base
            ])
            return FeasibilityAnalyzer(ss, rt).upper_bound(2)

        # Same set above C ({A, B}), different orders, different bounds.
        assert u_of_c((0, 1, 2)) == 53   # A > B > C
        assert u_of_c((1, 0, 2)) == 33   # B > A > C

    def test_unschedulable_returns_none(self, net):
        mesh, rt = net
        # Two streams over the same channel, both with deadlines below the
        # blocking any order implies.
        streams = StreamSet([
            ms(0, mesh, (0, 0), (4, 0), period=100, deadline=13, length=10),
            ms(1, mesh, (0, 0), (4, 0), period=100, deadline=13, length=10),
        ])
        assert audsley_assignment(streams, rt) is None

    def test_empty_rejected(self, net):
        _, rt = net
        with pytest.raises(AnalysisError):
            audsley_assignment(StreamSet(), rt)


class TestGrouping:
    def test_group_quantiles(self, net):
        mesh, _ = net
        streams = StreamSet([
            ms(i, mesh, (0, i), (3, i), period=100 + i, priority=i + 1)
            for i in range(8)
        ])
        grouped = group_into_levels(streams, 4)
        assert {s.priority for s in grouped} == {1, 2, 3, 4}
        # Order preserved: the two highest originals share the top class.
        assert grouped[7].priority == 4 and grouped[6].priority == 4
        assert grouped[0].priority == 1

    def test_levels_geq_distinct_is_relabel(self, net):
        mesh, _ = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (3, 0), period=100, priority=7),
            ms(1, mesh, (0, 1), (3, 1), period=100, priority=3),
        ])
        grouped = group_into_levels(streams, 2)
        assert grouped[0].priority == 2 and grouped[1].priority == 1

    def test_single_level_flattens(self, net):
        mesh, _ = net
        streams = StreamSet([
            ms(i, mesh, (0, i), (3, i), period=100, priority=i + 1)
            for i in range(5)
        ])
        grouped = group_into_levels(streams, 1)
        assert all(s.priority == 1 for s in grouped)

    def test_bad_levels_rejected(self, net):
        mesh, _ = net
        streams = StreamSet([ms(0, mesh, (0, 0), (3, 0), period=100)])
        with pytest.raises(AnalysisError):
            group_into_levels(streams, 0)
        with pytest.raises(AnalysisError):
            group_into_levels(StreamSet(), 3)
