"""Cross-module integration tests: the central soundness claim.

The paper's algorithm promises that ``U_i`` upper-bounds the transmission
delay of every message of stream ``i`` under flit-level preemptive priority
switching. These tests simulate random paper-style workloads from the
critical instant (all streams released together — the worst alignment the
analysis assumes) and assert that **no observed delay ever exceeds its
bound**, across seeds, arbitration of ties, priority-level counts, and
release phases.
"""

import pytest

from repro.analysis import inflate_periods
from repro.core.feasibility import FeasibilityAnalyzer
from repro.sim import PaperWorkload, WormholeSimulator, random_phases
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def check_soundness(mesh, rt, streams, bounds, *, until, phases=None):
    sim = WormholeSimulator(mesh, rt, streams, warmup=0)
    stats = sim.simulate_streams(until, phases=phases)
    violations = []
    for sid in stats.stream_ids():
        u = bounds[sid]
        if u > 0 and stats.max_delay(sid) > u:
            violations.append((sid, stats.max_delay(sid), u))
    assert violations == [], f"bound violations: {violations}"
    return stats


class TestBoundSoundness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_zero_phase_workloads(self, net, seed):
        mesh, rt = net
        wl = PaperWorkload(num_streams=12, priority_levels=3, seed=seed,
                           period_range=(200, 500))
        streams = wl.generate(mesh)
        result = inflate_periods(streams, rt, max_horizon=1 << 16)
        check_soundness(
            mesh, rt, result.streams, result.upper_bounds, until=10_000
        )

    @pytest.mark.parametrize("seed", [10, 11])
    def test_random_phase_workloads(self, net, seed):
        """The bound assumes the critical instant, so any other phase
        alignment must also be covered."""
        mesh, rt = net
        wl = PaperWorkload(num_streams=12, priority_levels=3, seed=seed,
                           period_range=(200, 500))
        streams = wl.generate(mesh)
        result = inflate_periods(streams, rt, max_horizon=1 << 16)
        check_soundness(
            mesh, rt, result.streams, result.upper_bounds, until=10_000,
            phases=random_phases(result.streams, seed=seed),
        )

    def test_single_priority_level(self, net):
        mesh, rt = net
        wl = PaperWorkload(num_streams=10, priority_levels=1, seed=5,
                           period_range=(300, 600))
        streams = wl.generate(mesh)
        result = inflate_periods(streams, rt, max_horizon=1 << 16)
        check_soundness(
            mesh, rt, result.streams, result.upper_bounds, until=10_000
        )

    def test_many_priority_levels(self, net):
        mesh, rt = net
        wl = PaperWorkload(num_streams=16, priority_levels=16, seed=6,
                           period_range=(200, 500))
        streams = wl.generate(mesh)
        result = inflate_periods(streams, rt, max_horizon=1 << 16)
        stats = check_soundness(
            mesh, rt, result.streams, result.upper_bounds, until=10_000
        )
        # With unique priorities the top stream can never be blocked.
        top = max(s.priority for s in result.streams)
        top_id = next(s.stream_id for s in result.streams
                      if s.priority == top)
        top_stream = result.streams[top_id]
        assert stats.max_delay(top_id) == result.upper_bounds[top_id] == \
            top_stream.latency or stats.max_delay(top_id) <= \
            result.upper_bounds[top_id]


class TestAdmissionIntegration:
    def test_admitted_jobs_meet_deadlines_in_simulation(self, net):
        """Admission control end to end: admit jobs until one is rejected,
        then verify by simulation that every admitted stream meets the
        deadline the controller guaranteed."""
        from repro.core.admission import AdmissionController
        from repro.core.streams import MessageStream

        mesh, rt = net
        ctrl = AdmissionController(rt)
        wl = PaperWorkload(num_streams=15, priority_levels=4, seed=9,
                           period_range=(150, 400), deadline_factor=1.0)
        requested = wl.generate(mesh)
        for s in requested:
            ctrl.try_admit(s)
        admitted = ctrl.admitted
        if len(admitted) == 0:
            pytest.skip("nothing admitted for this seed")
        sim = WormholeSimulator(mesh, rt, admitted, warmup=0)
        stats = sim.simulate_streams(8_000)
        for sid in stats.stream_ids():
            assert stats.max_delay(sid) <= admitted[sid].deadline


class TestAnalysisSimulationAgreement:
    def test_unblockable_streams_measure_exactly_their_bound(self, net):
        """Streams whose HP set is empty have U = L, and the simulation
        must measure exactly L for every one of their messages."""
        mesh, rt = net
        wl = PaperWorkload(num_streams=12, priority_levels=12, seed=12,
                           period_range=(300, 600))
        streams = wl.generate(mesh)
        an = FeasibilityAnalyzer(streams, rt)
        sim = WormholeSimulator(mesh, rt, an.streams, warmup=0)
        stats = sim.simulate_streams(8_000)
        for s in an.streams:
            if len(an.hp_sets[s.stream_id]) == 0:
                st = stats.stream_stats(s.stream_id)
                assert st.minimum == st.maximum == s.latency
