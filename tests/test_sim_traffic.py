"""Unit tests for workload generation (repro.sim.traffic)."""

import pytest

from repro.errors import SimulationError
from repro.sim.traffic import PaperWorkload, random_phases, zero_phases
from repro.topology import Mesh2D


@pytest.fixture(scope="module")
def mesh():
    return Mesh2D(10, 10)


class TestPaperWorkload:
    def test_paper_defaults(self, mesh):
        wl = PaperWorkload(num_streams=20, priority_levels=4, seed=0)
        streams = wl.generate(mesh)
        assert len(streams) == 20
        for s in streams:
            assert 10 <= s.length <= 40
            assert 400 <= s.period <= 900
            assert 1 <= s.priority <= 4
            assert s.deadline == s.period
            assert s.src != s.dst

    def test_sources_distinct(self, mesh):
        wl = PaperWorkload(num_streams=60, priority_levels=15, seed=1)
        streams = wl.generate(mesh)
        sources = [s.src for s in streams]
        assert len(set(sources)) == 60

    def test_too_many_streams_rejected(self, mesh):
        wl = PaperWorkload(num_streams=101, priority_levels=1)
        with pytest.raises(SimulationError):
            wl.generate(mesh)

    def test_seed_reproducible(self, mesh):
        a = PaperWorkload(20, 4, seed=7).generate(mesh)
        b = PaperWorkload(20, 4, seed=7).generate(mesh)
        assert [s.as_tuple() for s in a] == [s.as_tuple() for s in b]

    def test_different_seeds_differ(self, mesh):
        a = PaperWorkload(20, 4, seed=7).generate(mesh)
        b = PaperWorkload(20, 4, seed=8).generate(mesh)
        assert [s.as_tuple() for s in a] != [s.as_tuple() for s in b]

    def test_all_priority_levels_reachable(self, mesh):
        wl = PaperWorkload(num_streams=100, priority_levels=5, seed=3)
        streams = wl.generate(mesh)
        assert {s.priority for s in streams} == {1, 2, 3, 4, 5}

    def test_custom_ranges(self, mesh):
        wl = PaperWorkload(
            num_streams=10, priority_levels=2,
            length_range=(3, 3), period_range=(50, 60),
            deadline_factor=2.0, seed=0,
        )
        for s in wl.generate(mesh):
            assert s.length == 3
            assert 50 <= s.period <= 60
            assert s.deadline == 2 * s.period

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_streams": 0, "priority_levels": 1},
            {"num_streams": 5, "priority_levels": 0},
            {"num_streams": 5, "priority_levels": 1, "length_range": (0, 5)},
            {"num_streams": 5, "priority_levels": 1, "length_range": (5, 2)},
            {"num_streams": 5, "priority_levels": 1, "period_range": (9, 3)},
            {"num_streams": 5, "priority_levels": 1, "deadline_factor": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(SimulationError):
            PaperWorkload(**kwargs)


class TestPhases:
    def test_zero_phases(self, mesh):
        streams = PaperWorkload(5, 1, seed=0).generate(mesh)
        assert zero_phases(streams) == {i: 0 for i in streams.ids()}

    def test_random_phases_within_period(self, mesh):
        streams = PaperWorkload(20, 1, seed=0).generate(mesh)
        phases = random_phases(streams, seed=5)
        for s in streams:
            assert 0 <= phases[s.stream_id] < s.period

    def test_random_phases_reproducible(self, mesh):
        streams = PaperWorkload(20, 1, seed=0).generate(mesh)
        assert random_phases(streams, seed=5) == random_phases(streams, seed=5)
