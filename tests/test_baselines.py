"""Unit tests for the baselines (repro.baselines)."""

import math

import pytest

from repro.baselines import (
    compare_arbitration,
    liu_layland_bound,
    priority_inversion_scenario,
    rm_link_feasibility,
)
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError, SimulationError
from repro.topology import Mesh2D, XYRouting


class TestLiuLayland:
    def test_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284271)
        assert liu_layland_bound(3) == pytest.approx(0.7797632)

    def test_limit_is_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(math.log(2), abs=1e-4)

    def test_zero_tasks(self):
        assert liu_layland_bound(0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            liu_layland_bound(-1)


class TestRMLinkAnalysis:
    @pytest.fixture(scope="class")
    def net(self):
        mesh = Mesh2D(10, 10)
        return mesh, XYRouting(mesh)

    def test_light_load_feasible(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=1, period=1000, length=10, deadline=1000),
            MessageStream(1, mesh.node_xy(0, 1), mesh.node_xy(5, 1),
                          priority=1, period=1000, length=10, deadline=1000),
        ])
        analysis = rm_link_feasibility(streams, rt)
        assert analysis.feasible
        assert analysis.failing_links() == ()
        assert analysis.max_utilization() == pytest.approx(0.01)

    def test_overloaded_link_detected(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=1, period=20, length=10, deadline=20),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(6, 0),
                          priority=2, period=20, length=10, deadline=20),
        ])
        analysis = rm_link_feasibility(streams, rt)
        assert not analysis.feasible
        # The shared segment (1,0)->(5,0) carries utilization 1.0 > bound.
        shared = (mesh.node_xy(1, 0), mesh.node_xy(2, 0))
        assert shared in analysis.failing_links()
        assert analysis.verdicts[shared].utilization == pytest.approx(1.0)
        assert analysis.verdicts[shared].stream_ids == (0, 1)

    def test_only_used_links_reported(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(1, 0),
                          priority=1, period=100, length=10, deadline=100),
        ])
        analysis = rm_link_feasibility(streams, rt)
        assert set(analysis.verdicts) == {(mesh.node_xy(0, 0),
                                           mesh.node_xy(1, 0))}

    def test_rm_is_optimistic_vs_timing_analysis(self, net):
        """The paper's critique: a set can pass every per-link RM test while
        the exact analysis shows a deadline violation."""
        from repro.core.feasibility import FeasibilityAnalyzer

        mesh, rt = net
        # Low-priority stream with a deadline just above its latency; the
        # high-priority stream's blocking pushes U past the deadline while
        # link utilization stays tiny.
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=2, period=900, length=30, deadline=900),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(6, 0),
                          priority=1, period=900, length=10, deadline=16),
        ])
        rm = rm_link_feasibility(streams, rt)
        assert rm.feasible  # RM sees ~4% utilization and is happy
        exact = FeasibilityAnalyzer(streams, rt).determine_feasibility()
        assert not exact.success  # blocking makes stream 1 miss D=16


class TestInversionScenario:
    def test_scenario_shape(self):
        mesh, rt, streams = priority_inversion_scenario()
        assert len(streams) == 4
        prios = sorted(s.priority for s in streams)
        assert prios == [2, 3, 3, 4]

    def test_too_small_mesh_rejected(self):
        with pytest.raises(SimulationError):
            priority_inversion_scenario(width=4, height=1)

    def test_classical_inverts_priority(self):
        mesh, rt, streams = priority_inversion_scenario()
        cmp = compare_arbitration(mesh, rt, streams, until=8_000, warmup=500)
        # The top-priority stream must be dramatically slower classically.
        assert cmp.blowup(4) > 2.0
        # Under preemption its delay is its no-load latency.
        top = next(s for s in streams if s.priority == 4)
        hops = rt.hop_count(top.src, top.dst)
        assert cmp.preemptive[4].maximum == hops + top.length - 1
