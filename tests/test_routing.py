"""Unit tests for routing algorithms and deadlock checking
(repro.topology.routing)."""

import pytest

from repro.errors import RoutingError
from repro.topology import (
    DimensionOrderRouting,
    ECubeRouting,
    Hypercube,
    Mesh,
    Mesh2D,
    Torus,
    TorusDimensionOrderRouting,
    XYRouting,
    channel_dependency_graph,
    is_deadlock_free,
)


@pytest.fixture
def mesh10():
    return Mesh2D(10, 10)


@pytest.fixture
def xy(mesh10):
    return XYRouting(mesh10)


class TestXYRouting:
    def test_x_then_y(self, mesh10, xy):
        path = xy.route(mesh10.node_xy(2, 1), mesh10.node_xy(7, 5))
        coords = [mesh10.xy(n) for n in path]
        # x corrected first...
        assert coords[:6] == [(2, 1), (3, 1), (4, 1), (5, 1), (6, 1), (7, 1)]
        # ...then y.
        assert coords[6:] == [(7, 2), (7, 3), (7, 4), (7, 5)]

    def test_negative_directions(self, mesh10, xy):
        path = xy.route(mesh10.node_xy(5, 5), mesh10.node_xy(2, 3))
        coords = [mesh10.xy(n) for n in path]
        assert coords == [
            (5, 5), (4, 5), (3, 5), (2, 5), (2, 4), (2, 3),
        ]

    def test_same_node_route(self, mesh10, xy):
        n = mesh10.node_xy(4, 4)
        assert xy.route(n, n) == (n,)
        assert xy.route_channels(n, n) == ()

    def test_hop_count_matches_manhattan(self, mesh10, xy):
        for (a, b) in [((0, 0), (9, 9)), ((7, 3), (7, 7)), ((4, 1), (8, 5))]:
            src, dst = mesh10.node_xy(*a), mesh10.node_xy(*b)
            assert xy.hop_count(src, dst) == mesh10.hop_distance(src, dst)

    def test_next_hop(self, mesh10, xy):
        src, dst = mesh10.node_xy(2, 2), mesh10.node_xy(4, 2)
        assert xy.next_hop(src, dst) == mesh10.node_xy(3, 2)
        with pytest.raises(RoutingError):
            xy.next_hop(dst, dst)

    def test_route_channels_are_consecutive(self, mesh10, xy):
        chans = xy.route_channels(mesh10.node_xy(1, 1), mesh10.node_xy(5, 4))
        assert len(chans) == 7
        for (u1, v1), (u2, v2) in zip(chans[:-1], chans[1:]):
            assert v1 == u2

    def test_requires_mesh2d(self):
        with pytest.raises(RoutingError):
            XYRouting(Mesh((3, 3, 3)))

    def test_route_cached(self, mesh10, xy):
        a, b = mesh10.node_xy(0, 0), mesh10.node_xy(3, 3)
        assert xy.route(a, b) is xy.route(a, b)

    def test_paper_example_routes_overlap(self, mesh10, xy):
        """M2 and M4 of section 4.4 share channel (6,1)->(7,1)."""
        m2 = set(xy.route_channels(mesh10.node_xy(2, 1), mesh10.node_xy(7, 5)))
        m4 = set(xy.route_channels(mesh10.node_xy(6, 1), mesh10.node_xy(9, 3)))
        shared = m2 & m4
        assert (mesh10.node_xy(6, 1), mesh10.node_xy(7, 1)) in shared


class TestDimensionOrderRouting:
    def test_3d_order(self):
        m = Mesh((4, 4, 4))
        r = DimensionOrderRouting(m)
        path = r.route(m.node_at((0, 0, 0)), m.node_at((2, 1, 3)))
        coords = [m.coords(n) for n in path]
        # dimension 0 first, then 1, then 2.
        assert coords[1] == (1, 0, 0)
        assert coords[2] == (2, 0, 0)
        assert coords[3] == (2, 1, 0)
        assert coords[-1] == (2, 1, 3)
        assert len(path) == 1 + 2 + 1 + 3

    def test_rejects_torus(self):
        with pytest.raises(RoutingError):
            DimensionOrderRouting(Torus((4, 4)))

    def test_rejects_non_mesh(self):
        with pytest.raises(RoutingError):
            DimensionOrderRouting(Hypercube(3))


class TestECubeRouting:
    def test_lsb_first(self):
        h = Hypercube(4)
        r = ECubeRouting(h)
        path = r.route(0b0000, 0b1011)
        assert path == (0b0000, 0b0001, 0b0011, 0b1011)

    def test_hop_count_is_hamming(self):
        h = Hypercube(4)
        r = ECubeRouting(h)
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    assert r.hop_count(src, dst) == bin(src ^ dst).count("1")

    def test_rejects_mesh(self):
        with pytest.raises(RoutingError):
            ECubeRouting(Mesh((4, 4)))


class TestTorusRouting:
    def test_takes_short_way_round(self):
        t = Torus((8, 8))
        r = TorusDimensionOrderRouting(t)
        a, b = t.node_at((0, 0)), t.node_at((7, 0))
        assert r.hop_count(a, b) == 1

    def test_ties_go_positive(self):
        t = Torus((8,))
        r = TorusDimensionOrderRouting(t)
        path = r.route(0, 4)
        assert path == (0, 1, 2, 3, 4)

    def test_minimal_everywhere(self):
        t = Torus((5, 5))
        r = TorusDimensionOrderRouting(t)
        for src in t.nodes():
            for dst in t.nodes():
                if src != dst:
                    assert r.hop_count(src, dst) == t.hop_distance(src, dst)

    def test_rejects_mesh(self):
        with pytest.raises(RoutingError):
            TorusDimensionOrderRouting(Mesh((4, 4)))


class TestDeadlockFreedom:
    def test_xy_on_mesh_is_deadlock_free(self):
        assert is_deadlock_free(XYRouting(Mesh2D(5, 5)))

    def test_dimension_order_3d_mesh_is_deadlock_free(self):
        assert is_deadlock_free(DimensionOrderRouting(Mesh((3, 3, 3))))

    def test_ecube_is_deadlock_free(self):
        assert is_deadlock_free(ECubeRouting(Hypercube(4)))

    def test_torus_raw_graph_is_cyclic_but_datelines_break_it(self):
        import networkx as nx

        routing = TorusDimensionOrderRouting(Torus((4, 4)))
        # Without dateline VCs the raw channel-dependency graph is cyclic...
        raw = channel_dependency_graph(routing)
        assert not nx.is_directed_acyclic_graph(raw)
        # ...and the two-class dateline scheme breaks every cycle.
        assert routing.num_vc_classes == 2
        assert is_deadlock_free(routing)

    def test_torus_extent2_is_safe(self):
        # With extent 2 there are no distinct wrap channels, hence no cycle.
        assert is_deadlock_free(TorusDimensionOrderRouting(Torus((2, 2))))

    def test_torus_route_classes(self):
        torus = Torus((6, 6))
        r = TorusDimensionOrderRouting(torus)
        # (5, 0) -> (1, 0): wraps the x dimension at the first hop.
        src, dst = torus.node_at((5, 0)), torus.node_at((1, 0))
        assert r.route_classes(src, dst) == (1, 1)
        # (1, 0) -> (3, 0): no wrap, all class 0.
        src, dst = torus.node_at((1, 0)), torus.node_at((3, 0))
        assert r.route_classes(src, dst) == (0, 0)
        # Negative direction wrap: (1, 0) -> (5, 0) goes 1,0,5.
        src, dst = torus.node_at((1, 0)), torus.node_at((5, 0))
        assert r.route_classes(src, dst) == (0, 1)
        # Classes reset on entering a new dimension.
        src, dst = torus.node_at((5, 2)), torus.node_at((0, 4))
        assert r.route_classes(src, dst) == (1, 0, 0)

    def test_mesh_route_classes_all_zero(self):
        mesh = Mesh2D(4, 4)
        r = XYRouting(mesh)
        assert r.num_vc_classes == 1
        assert r.route_classes(0, 15) == (0,) * r.hop_count(0, 15)

    def test_dependency_graph_nodes_are_channels(self):
        mesh = Mesh2D(3, 3)
        g = channel_dependency_graph(XYRouting(mesh))
        assert set(g.nodes) == set(mesh.channels())
        # Y->X dependencies must never appear under X-Y routing.
        for (u1, v1), (u2, v2) in g.edges:
            du = mesh.xy(v1)[0] - mesh.xy(u1)[0]
            dv = mesh.xy(v2)[0] - mesh.xy(u2)[0]
            if du == 0:  # first link is a Y move
                assert dv == 0  # then the next cannot be an X move
