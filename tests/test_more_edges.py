"""Second batch of edge-case tests across modules."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.rtchannel import StoreAndForwardSimulator, holistic_bounds
from repro.sim import WormholeSimulator
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=100, length=5, deadline=None):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=deadline or period)


class TestDrainSemantics:
    def test_drain_false_leaves_unfinished(self, net):
        mesh, rt = net
        # Released just before the horizon: cannot finish in time.
        s = ms(0, mesh, (0, 0), (9, 0), length=30, period=100)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(101, drain=False)
        assert stats.unfinished == 1
        assert stats.stream_stats(0).count == 1  # first instance finished

    def test_drain_true_completes_all(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (9, 0), length=30, period=100)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(101, drain=True)
        assert stats.unfinished == 0
        assert stats.stream_stats(0).count == 2


class TestHolisticJitterPropagation:
    def test_downstream_jitter_amplifies_interference(self, net):
        """Hand-computed: victim v crosses two links; a hi-frequency
        interferer shares only the second. v's arrival jitter at link 2
        is its link-1 response minus C, which widens the interference
        window the analysis must charge on link 2."""
        mesh, rt = net
        # v: (0,0)->(2,0); interferer on (1,0)->(2,0) only.
        v = ms(0, mesh, (0, 0), (2, 0), priority=1, length=4, period=200)
        hi = ms(1, mesh, (1, 0), (3, 0), priority=2, length=6, period=40)
        hb = holistic_bounds(StreamSet([v, hi]), rt)
        links = hb[0].links
        # Link 1 ((0,0)->(1,0)) is private: response = C = 4, jitter 0.
        assert links[0].response == 4
        assert links[0].jitter_in == 0
        # Link 2: one hi instance interferes (jitter 0 at the first pass
        # because link 1's response equals the best case): s = 6, R = 10.
        assert links[1].jitter_in == 0
        assert links[1].response == 6 + 4
        assert hb[0].bound == 14

    def test_victim_jitter_propagates_but_is_not_self_charged(self, net):
        """Upstream contention gives the victim release jitter at the next
        link. That jitter widens the interference the *victim* imposes on
        others; the victim's own per-link response is measured from its
        (jittered) arrival and charges only the interferer's instances in
        its busy window — one here, since T_down=32 exceeds the window."""
        mesh, rt = net
        v = ms(0, mesh, (0, 0), (2, 0), priority=1, length=4, period=400)
        up = ms(1, mesh, (0, 0), (1, 0), priority=2, length=30, period=400)
        down = ms(2, mesh, (1, 0), (2, 0), priority=2, length=5, period=32)
        hb = holistic_bounds(StreamSet([v, up, down]), rt)
        links = hb[0].links
        # Link 1: response = 30 (higher-priority up) + 4 -> jitter 30 next.
        assert links[0].response == 34
        assert links[1].jitter_in == 30
        # One 'down' instance in the 9-slot busy window (T_down = 32 > 9).
        assert links[1].response == 5 + 4
        assert hb[0].bound == 34 + 9
        assert hb[0].converged
        # And the victim's jitter is charged to streams it interferes
        # with: 'down' sees v's jittered window on their shared link.
        down_shared = hb[2].links[0]
        assert down_shared.response >= down.length


class TestSAFvsWormholeUnderLoad:
    def test_same_workload_both_substrates_sound(self, net):
        from repro.core.feasibility import FeasibilityAnalyzer

        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 2), (6, 2), priority=2, period=120, length=12),
            ms(1, mesh, (1, 2), (7, 2), priority=1, period=150, length=15),
            ms(2, mesh, (3, 0), (3, 5), priority=2, period=90, length=8),
        ])
        worm_bounds = FeasibilityAnalyzer(streams, rt).all_upper_bounds()
        saf_bounds = holistic_bounds(streams, rt)
        worm = WormholeSimulator(mesh, rt, streams)
        saf = StoreAndForwardSimulator(mesh, rt, streams)
        ws = worm.simulate_streams(5_000)
        ss = saf.simulate_streams(5_000)
        for sid in (0, 1, 2):
            assert ws.max_delay(sid) <= worm_bounds[sid]
            assert ss.max_delay(sid) <= saf_bounds[sid].bound


class TestStreamSetViewSafety:
    def test_streamset_copy_constructor_independent(self, net):
        mesh, _ = net
        a = StreamSet([ms(0, mesh, (0, 0), (1, 0))])
        b = StreamSet(a)
        b.add(ms(1, mesh, (0, 1), (1, 1)))
        assert len(a) == 1 and len(b) == 2

    def test_replace_keeps_order(self, net):
        mesh, _ = net
        s = StreamSet([ms(2, mesh, (0, 0), (1, 0)),
                       ms(0, mesh, (0, 1), (1, 1)),
                       ms(1, mesh, (0, 2), (1, 2))])
        s.replace(ms(0, mesh, (0, 1), (1, 1), period=999))
        assert s.ids() == (2, 0, 1)
        assert s[0].period == 999
