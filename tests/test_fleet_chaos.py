"""Fleet chaos campaign tests (``repro.fleet.chaos``).

Same split as ``test_chaos.py``: the unmarked tests run a small
campaign with boosted fault/kill rates so every mechanism fires inside
the tier-1 budget; the ``chaos``-marked tests run default-size
campaigns across several seeds (CI's chaos job and nightly runs).
"""

import pytest

from repro.fleet.chaos import (
    FleetChaosConfig,
    generate_fleet_schedule,
    run_fleet_chaos_campaign,
)

#: Small but hostile: kill and fault rates cranked up so the campaign
#: exercises primary kills, deferred failover, journal faults during
#: recovery, and duplicate acks even at 60 ops.
SMALL = FleetChaosConfig(
    seed=0,
    ops=60,
    tenants=2,
    shards=2,
    width=5,
    height=5,
    target_live=8,
    persistence_rate=0.4,
    kill_rate=0.10,
)


class TestSmallFleetCampaign:
    def test_fleet_survives_and_matches_oracles(self, tmp_path):
        report = run_fleet_chaos_campaign(SMALL, state_dir=tmp_path)
        assert report.ok, report.summary()
        assert report.bit_identical
        assert report.committed == SMALL.ops
        assert report.acked_then_lost == {}
        assert report.phantom_ids == {}
        assert report.outcome_mismatches == 0
        # The hostile rates must actually produce hostility.
        assert report.faults_total > 0
        assert report.kills >= 1
        assert report.promotions >= 1
        assert report.fleet_restarts >= 1

    def test_campaign_is_reproducible(self):
        first = run_fleet_chaos_campaign(SMALL).to_dict()
        second = run_fleet_chaos_campaign(SMALL).to_dict()
        first.pop("seconds"), second.pop("seconds")
        assert first == second

    def test_schedule_is_deterministic_and_interleaved(self):
        sched = generate_fleet_schedule(SMALL)
        assert len(sched) == SMALL.ops
        assert sched == generate_fleet_schedule(SMALL)
        tenants = {tenant for tenant, _ in sched}
        assert len(tenants) == SMALL.tenants
        rids = [entry.rid for _, entry in sched]
        assert len(set(rids)) == len(rids)

    def test_report_dict_shape(self, tmp_path):
        report = run_fleet_chaos_campaign(SMALL, state_dir=tmp_path)
        d = report.to_dict()
        for key in ("seed", "ops", "tenants", "shards", "kills",
                    "promotions", "oracle_shas", "live_shas",
                    "recovered_shas", "bit_identical", "ok"):
            assert key in d
        assert set(d["oracle_shas"]) == {"tenant-0", "tenant-1"}
        assert "fleet chaos seed=0" in report.summary()


#: Worker mode, small but hostile: real SIGKILLs of shard worker
#: processes (half between ops, half armed to fire mid-RPC) on top of
#: the primary kills. Persistence faults are off by construction —
#: injection cannot cross the process boundary.
WORKER_SMALL = FleetChaosConfig(
    seed=1,
    ops=48,
    tenants=2,
    shards=2,
    width=5,
    height=5,
    target_live=8,
    kill_rate=0.06,
    workers=2,
    worker_kill_rate=0.20,
)


class TestWorkerFleetCampaign:
    def test_worker_campaign_survives_real_sigkills(self, tmp_path):
        report = run_fleet_chaos_campaign(WORKER_SMALL, state_dir=tmp_path)
        assert report.ok, report.summary()
        assert report.bit_identical
        assert report.committed == WORKER_SMALL.ops
        assert report.acked_then_lost == {}
        assert report.phantom_ids == {}
        assert report.outcome_mismatches == 0
        # The hostile rates must actually produce hostility: real
        # SIGKILLs, real restarts, and ops retried through them.
        assert report.workers == 2
        assert report.worker_kills >= 1
        assert report.worker_restarts >= 1
        assert report.worker_retries >= 1

    def test_worker_campaign_outcome_is_reproducible(self):
        """The *verdict* is seed-deterministic even though the race a
        mid-RPC SIGKILL creates is not: whether the victim committed
        before dying varies run to run, but rid idempotency forces both
        runs to the same final state. Timing-raced counters (retries,
        restarts, duplicate acks) are the only fields allowed to
        differ."""
        first = run_fleet_chaos_campaign(WORKER_SMALL).to_dict()
        second = run_fleet_chaos_campaign(WORKER_SMALL).to_dict()
        for raced in ("seconds", "worker_retries", "worker_restarts",
                      "duplicate_acks"):
            first.pop(raced), second.pop(raced)
        assert first == second

    def test_worker_report_dict_shape(self, tmp_path):
        report = run_fleet_chaos_campaign(WORKER_SMALL, state_dir=tmp_path)
        d = report.to_dict()
        for key in ("workers", "worker_kills", "worker_retries",
                    "worker_restarts"):
            assert key in d
        assert "worker SIGKILLs" in report.summary()


@pytest.mark.chaos
class TestFullFleetCampaign:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_default_size_campaign(self, seed, tmp_path):
        report = run_fleet_chaos_campaign(
            FleetChaosConfig(seed=seed), state_dir=tmp_path
        )
        assert report.ok, report.summary()
        assert report.kills >= 1
        assert report.promotions >= 1


@pytest.mark.chaos
class TestFullWorkerCampaign:
    @pytest.mark.parametrize("seed", [3, 5])
    def test_default_size_worker_campaign(self, seed, tmp_path):
        report = run_fleet_chaos_campaign(
            FleetChaosConfig(seed=seed, workers=2, worker_kill_rate=0.12),
            state_dir=tmp_path,
        )
        assert report.ok, report.summary()
        assert report.worker_kills >= 3
        assert report.worker_restarts >= 1
        assert report.bit_identical
