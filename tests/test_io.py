"""Unit tests for problem/report serialisation (repro.io)."""

import json

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import MessageStream, StreamSet
from repro.errors import ReproError
from repro.io import (
    load_problem,
    report_to_spec,
    save_problem,
    streams_to_spec,
    topology_from_spec,
)
from repro.topology import (
    ECubeRouting,
    Hypercube,
    Mesh2D,
    Torus,
    TorusDimensionOrderRouting,
    UpDownRouting,
    XYRouting,
)


class TestTopologyFromSpec:
    def test_mesh(self):
        # "routing": "default" pins the canonical algorithm even under a
        # suite-wide REPRO_ROUTING override.
        topo, routing = topology_from_spec(
            {"type": "mesh", "width": 6, "height": 4,
             "routing": "default"}
        )
        assert isinstance(topo, Mesh2D)
        assert topo.width == 6 and topo.height == 4
        assert isinstance(routing, XYRouting)

    def test_square_mesh_default_height(self):
        topo, _ = topology_from_spec({"type": "mesh", "width": 5})
        assert topo.width == topo.height == 5

    def test_torus(self):
        topo, routing = topology_from_spec(
            {"type": "torus", "dims": [4, 4], "routing": "default"}
        )
        assert isinstance(topo, Torus)
        assert isinstance(routing, TorusDimensionOrderRouting)

    def test_torus_needs_dims(self):
        with pytest.raises(ReproError):
            topology_from_spec({"type": "torus"})

    def test_hypercube(self):
        topo, routing = topology_from_spec(
            {"type": "hypercube", "dimension": 5, "routing": "default"}
        )
        assert isinstance(topo, Hypercube)
        assert topo.num_nodes == 32
        assert isinstance(routing, ECubeRouting)

    def test_updown_routing_key(self):
        _, routing = topology_from_spec(
            {"type": "mesh", "width": 4, "routing": "updown"}
        )
        assert isinstance(routing, UpDownRouting)

    def test_env_override_when_spec_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTING", "updown")
        _, routing = topology_from_spec({"type": "mesh", "width": 4})
        assert isinstance(routing, UpDownRouting)

    def test_spec_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTING", "updown")
        _, routing = topology_from_spec(
            {"type": "mesh", "width": 4, "routing": "default"}
        )
        assert isinstance(routing, XYRouting)

    def test_unknown_routing(self):
        with pytest.raises(ReproError):
            topology_from_spec(
                {"type": "mesh", "width": 4, "routing": "adaptive"}
            )

    def test_unknown_type(self):
        with pytest.raises(ReproError):
            topology_from_spec({"type": "dragonfly"})


class TestProblemRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        mesh = Mesh2D(10, 10)
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(7, 3), mesh.node_xy(7, 7),
                          priority=5, period=150, length=4, deadline=150,
                          latency=7),
            MessageStream(1, mesh.node_xy(1, 1), mesh.node_xy(5, 4),
                          priority=4, period=100, length=2, deadline=100),
        ])
        path = tmp_path / "problem.json"
        save_problem(path, {"type": "mesh", "width": 10, "height": 10},
                     streams)
        topo, routing, loaded = load_problem(path)
        assert isinstance(topo, Mesh2D)
        assert [s.as_tuple() for s in loaded] == [
            s.as_tuple() for s in streams
        ]

    def test_coordinate_node_refs(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(json.dumps({
            "topology": {"type": "mesh", "width": 4, "height": 4},
            "streams": [{"id": 0, "src": [0, 0], "dst": [3, 3],
                         "priority": 1, "period": 50, "length": 4,
                         "deadline": 50}],
        }))
        topo, _, streams = load_problem(path)
        assert streams[0].src == topo.node_at((0, 0))
        assert streams[0].dst == topo.node_at((3, 3))

    def test_legacy_mesh_key(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({
            "mesh": {"width": 4, "height": 4},
            "streams": [{"id": 0, "src": 0, "dst": 3, "priority": 1,
                         "period": 50, "length": 4, "deadline": 50}],
        }))
        topo, _, streams = load_problem(path)
        assert isinstance(topo, Mesh2D) and len(streams) == 1

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"streams": []}))
        with pytest.raises(ReproError):
            load_problem(path)
        path.write_text(json.dumps({"topology": {"type": "mesh"}}))
        with pytest.raises(ReproError):
            load_problem(path)

    def test_hypercube_problem(self, tmp_path):
        path = tmp_path / "cube.json"
        path.write_text(json.dumps({
            "topology": {"type": "hypercube", "dimension": 3},
            "streams": [{"id": 0, "src": 0, "dst": 7, "priority": 1,
                         "period": 60, "length": 4, "deadline": 60}],
        }))
        topo, routing, streams = load_problem(path)
        assert routing.hop_count(0, 7) == 3

    def test_torus_round_trip(self, tmp_path):
        torus = Torus((5, 4))
        streams = StreamSet([
            MessageStream(0, torus.node_at((0, 0)), torus.node_at((4, 3)),
                          priority=2, period=120, length=3, deadline=90),
            MessageStream(3, torus.node_at((2, 1)), torus.node_at((0, 2)),
                          priority=1, period=80, length=5, deadline=80,
                          latency=9),
        ])
        path = tmp_path / "torus.json"
        save_problem(path, {"type": "torus", "dims": [5, 4],
                            "routing": "default"}, streams)
        topo, routing, loaded = load_problem(path)
        assert isinstance(topo, Torus)
        assert isinstance(routing, TorusDimensionOrderRouting)
        assert [s.as_tuple() for s in loaded] == [
            s.as_tuple() for s in streams
        ]

    def test_hypercube_round_trip(self, tmp_path):
        cube = Hypercube(4)
        streams = StreamSet([
            MessageStream(1, 0, 15, priority=3, period=200, length=6,
                          deadline=140),
            MessageStream(2, 5, 10, priority=1, period=90, length=2,
                          deadline=90, latency=8),
        ])
        path = tmp_path / "cube_rt.json"
        save_problem(path, {"type": "hypercube", "dimension": 4,
                            "routing": "default"}, streams)
        topo, routing, loaded = load_problem(path)
        assert isinstance(topo, Hypercube)
        assert isinstance(routing, ECubeRouting)
        assert [s.as_tuple() for s in loaded] == [
            s.as_tuple() for s in streams
        ]


class TestReportSpec:
    def test_report_serialisation(self):
        mesh = Mesh2D(10, 10)
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0),
                          priority=1, period=100, length=5, deadline=100),
        ])
        report = FeasibilityAnalyzer(
            streams, XYRouting(mesh)
        ).determine_feasibility()
        spec = report_to_spec(report)
        assert spec["success"] is True
        assert spec["streams"]["0"]["upper_bound"] == 8
        assert spec["streams"]["0"]["slack"] == 92
        json.dumps(spec)  # must be JSON-clean

    def test_streams_to_spec_omits_missing_latency(self):
        streams = StreamSet([
            MessageStream(0, 0, 1, priority=1, period=10, length=2,
                          deadline=10),
        ])
        spec = streams_to_spec(streams)
        assert "latency" not in spec[0]
