"""Unit tests for admission control (repro.core.admission)."""

import pytest

from repro.core.admission import AdmissionController
from repro.core.streams import MessageStream
from repro.errors import AnalysisError, StreamError
from repro.topology import Mesh2D, XYRouting


@pytest.fixture()
def controller():
    mesh = Mesh2D(10, 10)
    return AdmissionController(XYRouting(mesh)), mesh


def ms(i, mesh, src, dst, priority, period=200, length=10, deadline=None):
    return MessageStream(
        i, mesh.node_xy(*src), mesh.node_xy(*dst), priority=priority,
        period=period, length=length, deadline=deadline or period,
    )


class TestAdmission:
    def test_admit_feasible_stream(self, controller):
        ctrl, mesh = controller
        d = ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        assert d.admitted
        assert len(ctrl.admitted) == 1
        assert d.violations == ()

    def test_reject_infeasible_request(self, controller):
        ctrl, mesh = controller
        # Deadline below the no-load latency: impossible to guarantee.
        bad = ms(0, mesh, (0, 0), (5, 0), priority=1, length=10, deadline=5)
        d = ctrl.try_admit(bad)
        assert not d.admitted
        assert len(ctrl.admitted) == 0
        assert 0 in d.violations

    def test_rejection_protects_existing_guarantees(self, controller):
        ctrl, mesh = controller
        # Victim: low priority, tight deadline, just feasible alone.
        victim = ms(0, mesh, (0, 0), (5, 0), priority=1, length=10,
                    period=500, deadline=15)
        assert ctrl.try_admit(victim).admitted
        # Aggressor: higher priority on the same row; would break victim.
        aggressor = ms(1, mesh, (1, 0), (6, 0), priority=2, length=30,
                       period=40, deadline=200)
        d = ctrl.try_admit(aggressor)
        assert not d.admitted
        assert 0 in d.violations
        assert len(ctrl.admitted) == 1

    def test_batch_admission_all_or_nothing(self, controller):
        ctrl, mesh = controller
        good = ms(0, mesh, (0, 0), (5, 0), priority=1)
        bad = ms(1, mesh, (0, 1), (5, 1), priority=1, deadline=2)
        d = ctrl.try_admit([good, bad])
        assert not d.admitted
        assert len(ctrl.admitted) == 0

    def test_release_frees_capacity(self, controller):
        ctrl, mesh = controller
        a = ms(0, mesh, (0, 0), (5, 0), priority=2, period=40, length=30)
        assert ctrl.try_admit(a).admitted
        tight = ms(1, mesh, (1, 0), (6, 0), priority=1, length=10,
                   period=500, deadline=15)
        assert not ctrl.try_admit(tight).admitted
        ctrl.release(0)
        assert ctrl.try_admit(tight).admitted

    def test_empty_request_rejected(self, controller):
        ctrl, _ = controller
        with pytest.raises(AnalysisError):
            ctrl.try_admit([])

    def test_fresh_id_skips_admitted(self, controller):
        ctrl, mesh = controller
        ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        nid = ctrl.fresh_id()
        assert nid not in ctrl.admitted
        assert ctrl.fresh_id() != nid

    def test_fresh_id_never_reuses_released(self, controller):
        ctrl, mesh = controller
        sid = ctrl.fresh_id()
        assert ctrl.try_admit(
            ms(sid, mesh, (0, 0), (5, 0), priority=1)).admitted
        ctrl.release(sid)
        assert ctrl.fresh_id() > sid
        # Explicitly requested ids advance the counter past themselves.
        ctrl.try_admit(ms(100, mesh, (0, 1), (5, 1), priority=1))
        ctrl.release(100)
        assert ctrl.fresh_id() > 100

    def test_release_unknown_id_raises(self, controller):
        ctrl, mesh = controller
        ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        with pytest.raises(StreamError, match=r"\[3, 9\]"):
            ctrl.release([0, 9, 3])
        # Atomic: the known id stays admitted on a failed release.
        assert 0 in ctrl.admitted

    def test_current_report(self, controller):
        ctrl, mesh = controller
        # Empty set: trivially feasible (nothing to guarantee).
        empty = ctrl.current_report()
        assert empty.success and empty.verdicts == {}
        ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        report = ctrl.current_report()
        assert report.success

    def test_admit_release_readmit_churn(self, controller):
        ctrl, mesh = controller
        for cycle in range(3):
            sid = ctrl.fresh_id()
            d = ctrl.try_admit(
                ms(sid, mesh, (0, cycle), (5, cycle), priority=1))
            assert d.admitted
            assert ctrl.current_report().success
            ctrl.release(sid)
            assert sid not in ctrl.admitted
        assert len(ctrl.admitted) == 0
        assert ctrl.current_report().success
