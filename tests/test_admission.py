"""Unit tests for admission control (repro.core.admission)."""

import pytest

from repro.core.admission import AdmissionController
from repro.core.streams import MessageStream
from repro.errors import AnalysisError
from repro.topology import Mesh2D, XYRouting


@pytest.fixture()
def controller():
    mesh = Mesh2D(10, 10)
    return AdmissionController(XYRouting(mesh)), mesh


def ms(i, mesh, src, dst, priority, period=200, length=10, deadline=None):
    return MessageStream(
        i, mesh.node_xy(*src), mesh.node_xy(*dst), priority=priority,
        period=period, length=length, deadline=deadline or period,
    )


class TestAdmission:
    def test_admit_feasible_stream(self, controller):
        ctrl, mesh = controller
        d = ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        assert d.admitted
        assert len(ctrl.admitted) == 1
        assert d.violations == ()

    def test_reject_infeasible_request(self, controller):
        ctrl, mesh = controller
        # Deadline below the no-load latency: impossible to guarantee.
        bad = ms(0, mesh, (0, 0), (5, 0), priority=1, length=10, deadline=5)
        d = ctrl.try_admit(bad)
        assert not d.admitted
        assert len(ctrl.admitted) == 0
        assert 0 in d.violations

    def test_rejection_protects_existing_guarantees(self, controller):
        ctrl, mesh = controller
        # Victim: low priority, tight deadline, just feasible alone.
        victim = ms(0, mesh, (0, 0), (5, 0), priority=1, length=10,
                    period=500, deadline=15)
        assert ctrl.try_admit(victim).admitted
        # Aggressor: higher priority on the same row; would break victim.
        aggressor = ms(1, mesh, (1, 0), (6, 0), priority=2, length=30,
                       period=40, deadline=200)
        d = ctrl.try_admit(aggressor)
        assert not d.admitted
        assert 0 in d.violations
        assert len(ctrl.admitted) == 1

    def test_batch_admission_all_or_nothing(self, controller):
        ctrl, mesh = controller
        good = ms(0, mesh, (0, 0), (5, 0), priority=1)
        bad = ms(1, mesh, (0, 1), (5, 1), priority=1, deadline=2)
        d = ctrl.try_admit([good, bad])
        assert not d.admitted
        assert len(ctrl.admitted) == 0

    def test_release_frees_capacity(self, controller):
        ctrl, mesh = controller
        a = ms(0, mesh, (0, 0), (5, 0), priority=2, period=40, length=30)
        assert ctrl.try_admit(a).admitted
        tight = ms(1, mesh, (1, 0), (6, 0), priority=1, length=10,
                   period=500, deadline=15)
        assert not ctrl.try_admit(tight).admitted
        ctrl.release(0)
        assert ctrl.try_admit(tight).admitted

    def test_empty_request_rejected(self, controller):
        ctrl, _ = controller
        with pytest.raises(AnalysisError):
            ctrl.try_admit([])

    def test_fresh_id_skips_admitted(self, controller):
        ctrl, mesh = controller
        ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        nid = ctrl.fresh_id()
        assert nid not in ctrl.admitted
        assert ctrl.fresh_id() != nid

    def test_current_report(self, controller):
        ctrl, mesh = controller
        with pytest.raises(AnalysisError):
            ctrl.current_report()
        ctrl.try_admit(ms(0, mesh, (0, 0), (5, 0), priority=1))
        report = ctrl.current_report()
        assert report.success
