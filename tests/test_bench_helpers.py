"""Unit tests for the benchmark harness helpers (benchmarks/common.py)."""

import numpy as np
import pytest

from benchmarks.common import (
    run_table_seeds,
    soundness_report,
    summarize_seeds,
    write_output,
)


@pytest.fixture(scope="module")
def small_results(monkeypatch_module=None):
    """Two tiny table runs (module-scoped: they cost ~0.5 s)."""
    import benchmarks.common as common

    old_time, old_seeds = common.SIM_TIME, common.N_SEEDS
    common.SIM_TIME = 3_000
    try:
        return run_table_seeds("helper_test", num_streams=6,
                               priority_levels=2, seeds=[0, 1])
    finally:
        common.SIM_TIME = old_time
        common.N_SEEDS = old_seeds


class TestSummarize:
    def test_contains_each_seed_and_average(self, small_results):
        text = summarize_seeds("helper_test", small_results)
        assert "helper_test_seed0" in text
        assert "helper_test_seed1" in text
        assert "seed-averaged ratio per priority level" in text

    def test_average_is_mean_of_seeds(self, small_results):
        text = summarize_seeds("helper_test", small_results)
        top = max(small_results[0].rows)
        expected = np.mean([
            r.rows[top].mean for r in small_results if top in r.rows
        ])
        assert f"{expected:.3f}" in text


class TestSoundnessReport:
    def test_clean_report(self, small_results):
        text = soundness_report(small_results)
        assert text.startswith("soundness: max observed delay <= U")

    def test_violation_formatting(self, small_results):
        # Forge a violation by shrinking one bound below the observed max.
        forged = small_results[0]
        sid = next(iter(forged.stats.stream_ids()))
        original = forged.upper_bounds[sid]
        forged.upper_bounds[sid] = 1
        try:
            text = soundness_report(small_results)
            assert "BOUND VIOLATIONS" in text
            assert f"stream {sid}" in text
        finally:
            forged.upper_bounds[sid] = original


class TestWriteOutput:
    def test_persists_and_echoes(self, tmp_path, capsys, monkeypatch):
        import benchmarks.common as common

        monkeypatch.setattr(common, "OUTPUT_DIR", tmp_path)
        write_output("unit", "hello artifact")
        assert (tmp_path / "unit.txt").read_text() == "hello artifact\n"
        assert "hello artifact" in capsys.readouterr().out
