"""Unit tests for interference attribution (repro.core.report)."""

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import BlockingMode
from repro.core.report import format_interference_report, interference_report
from repro.core.streams import MessageStream, StreamSet
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


class TestInterferenceReport:
    def test_unblocked_stream(self, net):
        mesh, rt = net
        s = MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0),
                          priority=1, period=100, length=5, deadline=100)
        an = FeasibilityAnalyzer(StreamSet([s]), rt)
        r = interference_report(an, 0)
        assert r.upper_bound == 8 == r.latency
        assert r.contributions == ()
        assert r.interference == 0
        assert r.dominant() is None
        assert "(no interfering streams)" in format_interference_report(r)

    def test_slots_account_for_bound(self, net):
        """U = L + total attributed interference, exactly."""
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0),
                          priority=3, period=25, length=5, deadline=100),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0),
                          priority=2, period=40, length=4, deadline=100),
            MessageStream(2, mesh.node_xy(2, 0), mesh.node_xy(6, 0),
                          priority=1, period=200, length=6, deadline=200),
        ])
        an = FeasibilityAnalyzer(streams, rt)
        r = interference_report(an, 2)
        assert r.upper_bound > 0
        assert r.upper_bound == r.latency + r.interference
        blockers = {c.stream_id for c in r.contributions}
        assert blockers == {0, 1}
        assert all(c.mode is BlockingMode.DIRECT for c in r.contributions)

    def test_dominant_contributor(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0),
                          priority=3, period=20, length=10, deadline=100),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0),
                          priority=2, period=200, length=2, deadline=200),
            MessageStream(2, mesh.node_xy(2, 0), mesh.node_xy(6, 0),
                          priority=1, period=400, length=6, deadline=400),
        ])
        an = FeasibilityAnalyzer(streams, rt)
        r = interference_report(an, 2)
        assert r.dominant().stream_id == 0

    def test_paper_example_attribution(self, paper_streams, xy10,
                                       paper_hp_override):
        """M4 of section 4.4: U = 33 = L (10) + 23 attributed slots,
        with M0's released instances visible in the report."""
        an = FeasibilityAnalyzer(paper_streams, xy10,
                                 hp_override=paper_hp_override)
        r = interference_report(an, 4)
        assert r.upper_bound == 33
        assert r.latency == 10
        assert r.interference == 23
        by_id = {c.stream_id: c for c in r.contributions}
        assert by_id[0].removed_instances == 2
        assert by_id[1].removed_instances == 1
        assert by_id[0].mode is BlockingMode.INDIRECT
        assert by_id[3].mode is BlockingMode.DIRECT
        text = format_interference_report(r)
        assert "U = 33" in text and "INDIRECT" in text

    def test_unbounded_attribution_over_horizon(self, net):
        mesh, rt = net
        streams = StreamSet([
            MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0),
                          priority=2, period=10, length=10, deadline=100),
            MessageStream(1, mesh.node_xy(1, 0), mesh.node_xy(5, 0),
                          priority=1, period=100, length=5, deadline=100),
        ])
        an = FeasibilityAnalyzer(streams, rt)
        r = interference_report(an, 1, horizon=200)
        assert r.upper_bound == -1
        assert r.horizon == 200
        assert r.contributions[0].busy_slots == 200
        assert "exceeds horizon" in format_interference_report(r)
