"""Unit tests for latency models (repro.core.latency)."""

import pytest

from repro.core.latency import NoLoadLatency, PipelinedLatency
from repro.core.streams import MessageStream
from repro.errors import StreamError


def ms(length):
    return MessageStream(0, 0, 1, priority=1, period=100, length=length,
                         deadline=100)


class TestNoLoadLatency:
    def test_paper_formula(self):
        model = NoLoadLatency()
        assert model.latency(ms(4), 4) == 7
        assert model.latency(ms(2), 7) == 8
        assert model.latency(ms(4), 9) == 12
        assert model.latency(ms(9), 8) == 16
        assert model.latency(ms(6), 5) == 10

    def test_single_flit(self):
        assert NoLoadLatency().latency(ms(1), 3) == 3

    def test_single_hop(self):
        assert NoLoadLatency().latency(ms(10), 1) == 10

    def test_rejects_zero_hops(self):
        with pytest.raises(StreamError):
            NoLoadLatency().latency(ms(4), 0)


class TestPipelinedLatency:
    def test_router_delay_scales_header(self):
        model = PipelinedLatency(header_hop_delay=3)
        # header: 3 cycles/hop * 4 hops; body: C-1 more flit times.
        assert model.latency(ms(5), 4) == 12 + 4

    def test_unit_delay_equals_no_load(self):
        a, b = PipelinedLatency(1), NoLoadLatency()
        for hops in (1, 5, 9):
            assert a.latency(ms(7), hops) == b.latency(ms(7), hops)

    def test_rejects_bad_delay(self):
        with pytest.raises(StreamError):
            PipelinedLatency(0)
