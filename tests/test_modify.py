"""Unit tests for Modify_Diagram (repro.core.modify).

The key fixture is the paper's Fig. 6: the Fig. 4 streams re-labelled so
that M1 and M2 are INDIRECT with intermediates (M2) and (M3) respectively;
the paper removes M1's 2nd and 3rd instances and reads U = 22.
"""

import pytest

from repro.core.hpset import HPEntry, HPSet
from repro.core.modify import modify_diagram, releasable_instances
from repro.core.streams import MessageStream, StreamSet
from repro.core.timing_diagram import generate_init_diagram
from repro.errors import AnalysisError


def ms(i, priority, period, length, src=0, dst=1):
    return MessageStream(i, src, dst, priority=priority, period=period,
                         length=length, deadline=period)


@pytest.fixture()
def fig6():
    """Fig. 6 setup: chain M4 <- M3 <- M2 <- M1 (blocked-by direction)."""
    owner = ms(4, priority=0, period=100, length=6)
    streams = StreamSet([
        ms(1, priority=3, period=10, length=2),
        ms(2, priority=2, period=15, length=3),
        ms(3, priority=1, period=13, length=4),
        owner,
    ])
    hp = HPSet(4, [
        HPEntry.indirect(1, [2]),
        HPEntry.indirect(2, [3]),
        HPEntry.direct(3),
    ])
    blockers = {4: (3,), 3: (2,), 2: (1,), 1: ()}
    return owner, streams, hp, blockers


class TestFig6:
    def test_paper_u22(self, fig6):
        owner, streams, hp, blockers = fig6
        diagram, removed = modify_diagram(owner, hp, streams, blockers, 30)
        assert diagram.upper_bound(6) == 22

    def test_m1_second_and_third_instances_removed(self, fig6):
        owner, streams, hp, blockers = fig6
        diagram, removed = modify_diagram(owner, hp, streams, blockers, 30)
        # Instances at releases 10 and 20 (indices 1, 2) vanish because M2
        # does not request any of their slots.
        assert {1, 2}.issubset(removed[1])

    def test_m2_kept_where_m3_requests(self, fig6):
        owner, streams, hp, blockers = fig6
        diagram, removed = modify_diagram(owner, hp, streams, blockers, 30)
        kept = {inst.index for inst in diagram.instances[2]}
        # M3 waits through M2's first two instances, so they stay.
        assert {0, 1}.issubset(kept)

    def test_direct_only_matches_fig4(self, fig6):
        owner, streams, hp, blockers = fig6
        # Without any indirect entries the diagram is Fig. 4's: U = 26.
        hp_direct = HPSet(4, [HPEntry.direct(1), HPEntry.direct(2),
                              HPEntry.direct(3)])
        diagram, removed = modify_diagram(
            owner, hp_direct, streams, blockers, 30
        )
        assert removed == {}
        assert diagram.upper_bound(6) == 26

    def test_modify_never_loosens_bound(self, fig6):
        owner, streams, hp, blockers = fig6
        rows = tuple(
            sorted((streams[e.stream_id] for e in hp),
                   key=lambda s: (-s.priority, s.stream_id))
        )
        init = generate_init_diagram(4, rows, 30)
        final, _ = modify_diagram(owner, hp, streams, blockers, 30)
        assert final.upper_bound(6) <= init.upper_bound(6)

    def test_fixpoint_at_least_as_tight(self, fig6):
        owner, streams, hp, blockers = fig6
        single, _ = modify_diagram(owner, hp, streams, blockers, 30)
        fixed, _ = modify_diagram(
            owner, hp, streams, blockers, 30, fixpoint=True
        )
        assert fixed.upper_bound(6) <= single.upper_bound(6)


class TestReleasableInstances:
    def test_requires_intermediates(self):
        rows = (ms(0, 2, period=10, length=2),)
        d = generate_init_diagram(9, rows, 20)
        with pytest.raises(AnalysisError):
            releasable_instances(d, 0, frozenset())

    def test_idle_intermediate_releases(self):
        # K (stream 0) allocates 1-2 and 11-12; intermediate (stream 1,
        # period 40) only requests early slots.
        rows = (
            ms(0, 2, period=10, length=2),
            ms(1, 1, period=40, length=3),
        )
        d = generate_init_diagram(9, rows, 40)
        rel = releasable_instances(d, 0, frozenset({1}))
        # Instance 0 overlaps the intermediate's waiting (slots 1-2) and
        # stays; later instances see the intermediate idle and go.
        assert 0 not in rel
        assert {1, 2, 3}.issubset(set(rel))

    def test_paper_example_hp4_releases(self, paper_streams, paper_hp_override):
        """Section 4.4: M0's 2nd/3rd instances and M1's 4th are removed."""
        streams = paper_streams
        hp4 = paper_hp_override[4]
        blockers = {0: (), 1: (), 2: (0, 1), 3: (1,), 4: (2, 3)}
        diagram, removed = modify_diagram(
            streams[4], hp4, streams, blockers, 50
        )
        assert removed[0] == {1, 2}
        assert removed[1] == {3}
        assert diagram.upper_bound(10) == 33
