"""Unit tests for message streams and stream sets (repro.core.streams)."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.errors import StreamError


def ms(i, priority=1, period=100, length=10, deadline=100, src=0, dst=1,
       latency=None):
    return MessageStream(
        stream_id=i, src=src, dst=dst, priority=priority, period=period,
        length=length, deadline=deadline, latency=latency,
    )


class TestMessageStream:
    def test_valid_stream(self):
        s = ms(0, latency=12)
        assert s.priority == 1 and s.latency == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0},
            {"period": -5},
            {"length": 0},
            {"deadline": 0},
            {"latency": 0},
            {"src": -1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(StreamError):
            ms(0, **kwargs)

    def test_src_equals_dst_rejected(self):
        with pytest.raises(StreamError):
            ms(0, src=3, dst=3)

    def test_negative_id_rejected(self):
        with pytest.raises(StreamError):
            ms(-1)

    def test_from_tuple_matches_paper_order(self):
        s = MessageStream.from_tuple(4, (61, 39, 1, 50, 6, 50, 10))
        assert (s.src, s.dst) == (61, 39)
        assert (s.priority, s.period, s.length) == (1, 50, 6)
        assert (s.deadline, s.latency) == (50, 10)

    def test_from_tuple_rejects_wrong_arity(self):
        with pytest.raises(StreamError):
            MessageStream.from_tuple(0, (1, 2, 3))

    def test_as_tuple_roundtrip(self):
        s = MessageStream.from_tuple(1, (5, 9, 2, 45, 9, 45, 16))
        assert MessageStream.from_tuple(1, s.as_tuple()) == s

    def test_with_latency_is_copy(self):
        s = ms(0)
        s2 = s.with_latency(20)
        assert s.latency is None and s2.latency == 20
        assert s2.stream_id == s.stream_id

    def test_with_period(self):
        s = ms(0, period=100)
        assert s.with_period(250).period == 250

    def test_utilization(self):
        assert ms(0, period=100, length=25).utilization() == 0.25

    def test_frozen(self):
        s = ms(0)
        with pytest.raises(AttributeError):
            s.period = 7


class TestStreamSet:
    def test_add_and_lookup(self):
        ss = StreamSet([ms(0), ms(1)])
        assert len(ss) == 2
        assert ss[1].stream_id == 1
        assert 0 in ss and 2 not in ss

    def test_duplicate_id_rejected(self):
        ss = StreamSet([ms(0)])
        with pytest.raises(StreamError):
            ss.add(ms(0))

    def test_missing_lookup(self):
        ss = StreamSet()
        with pytest.raises(StreamError):
            ss[3]

    def test_iteration_preserves_insertion_order(self):
        ss = StreamSet([ms(5), ms(2), ms(9)])
        assert [s.stream_id for s in ss] == [5, 2, 9]
        assert ss.ids() == (5, 2, 9)

    def test_remove(self):
        ss = StreamSet([ms(0), ms(1)])
        removed = ss.remove(0)
        assert removed.stream_id == 0
        assert len(ss) == 1 and 0 not in ss
        with pytest.raises(StreamError):
            ss.remove(0)

    def test_replace(self):
        ss = StreamSet([ms(0, period=100)])
        ss.replace(ms(0, period=300))
        assert ss[0].period == 300
        with pytest.raises(StreamError):
            ss.replace(ms(7))

    def test_priorities_descending(self):
        ss = StreamSet([ms(0, priority=2), ms(1, priority=5), ms(2, priority=2)])
        assert ss.priorities() == (5, 2)

    def test_by_priority_glist(self):
        ss = StreamSet([ms(0, priority=2), ms(1, priority=5), ms(2, priority=2)])
        glist = ss.by_priority()
        assert [s.stream_id for s in glist[2]] == [0, 2]
        assert [s.stream_id for s in glist[5]] == [1]

    def test_sorted_by_priority_ties_by_id(self):
        ss = StreamSet([ms(3, priority=1), ms(1, priority=3),
                        ms(2, priority=3), ms(0, priority=2)])
        assert [s.stream_id for s in ss.sorted_by_priority()] == [1, 2, 0, 3]

    def test_higher_priority_than(self):
        ss = StreamSet([ms(0, priority=1), ms(1, priority=2), ms(2, priority=3)])
        ids = [s.stream_id for s in ss.higher_priority_than(ss[1])]
        assert ids == [2]

    def test_total_utilization(self):
        ss = StreamSet([ms(0, period=100, length=10),
                        ms(1, period=200, length=10)])
        assert ss.total_utilization() == pytest.approx(0.15)
