"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bdg import bfs_layers, build_bdg
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import build_all_hp_sets, direct_blockers, stream_channels
from repro.core.streams import MessageStream, StreamSet
from repro.core.timing_diagram import generate_init_diagram
from repro.topology import Hypercube, ECubeRouting, Mesh, Mesh2D, XYRouting
from repro.topology.routing import DimensionOrderRouting

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #

MESH = Mesh2D(8, 8)
XY = XYRouting(MESH)

node_ids = st.integers(min_value=0, max_value=MESH.num_nodes - 1)


@st.composite
def stream_sets(draw, max_streams=8, max_priority=4):
    n = draw(st.integers(min_value=1, max_value=max_streams))
    streams = StreamSet()
    for i in range(n):
        src = draw(node_ids)
        dst = draw(node_ids.filter(lambda d: d != src))
        streams.add(
            MessageStream(
                stream_id=i,
                src=src,
                dst=dst,
                priority=draw(st.integers(1, max_priority)),
                period=draw(st.integers(20, 200)),
                length=draw(st.integers(1, 15)),
                deadline=draw(st.integers(50, 400)),
            )
        )
    return streams


@st.composite
def diagram_rows(draw, max_rows=5):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    rows = []
    for i in range(n):
        rows.append(
            MessageStream(
                stream_id=i, src=0, dst=1,
                priority=max_rows - i,  # strictly decreasing: valid order
                period=draw(st.integers(3, 40)),
                length=draw(st.integers(1, 10)),
                deadline=100,
            )
        )
    return tuple(rows)


# ---------------------------------------------------------------------- #
# Topology / routing properties
# ---------------------------------------------------------------------- #


class TestRoutingProperties:
    @given(src=node_ids, dst=node_ids)
    @settings(max_examples=200, deadline=None)
    def test_xy_route_is_valid_and_minimal(self, src, dst):
        path = XY.route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == MESH.hop_distance(src, dst)
        for u, v in zip(path[:-1], path[1:]):
            assert MESH.has_channel(u, v)
        # No node repeats on a minimal dimension-ordered path.
        assert len(set(path)) == len(path)

    @given(src=st.integers(0, 31), dst=st.integers(0, 31))
    @settings(max_examples=100, deadline=None)
    def test_ecube_route_is_minimal(self, src, dst):
        h = Hypercube(5)
        r = ECubeRouting(h)
        path = r.route(src, dst)
        assert len(path) - 1 == h.hop_distance(src, dst)

    @given(
        dims=st.lists(st.integers(1, 5), min_size=1, max_size=3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_mesh_coords_roundtrip(self, dims, seed):
        m = Mesh(dims)
        node = seed % m.num_nodes
        assert m.node_at(m.coords(node)) == node

    @given(src=node_ids, dst=node_ids)
    @settings(max_examples=100, deadline=None)
    def test_route_suffix_property(self, src, dst):
        """Deterministic routing: the route from any intermediate node is
        the suffix of the original route (what next_hop relies on)."""
        path = XY.route(src, dst)
        for k in range(len(path) - 1):
            assert XY.route(path[k], dst) == path[k:]


# ---------------------------------------------------------------------- #
# HP-set properties
# ---------------------------------------------------------------------- #


class TestHPSetProperties:
    @given(streams=stream_sets())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hp_membership_rules(self, streams):
        channels = stream_channels(streams, XY)
        blockers = direct_blockers(streams, channels)
        hps = build_all_hp_sets(streams, channels=channels)
        for s in streams:
            hp = hps[s.stream_id]
            for entry in hp:
                other = streams[entry.stream_id]
                # Only equal-or-higher priorities can appear.
                assert other.priority >= s.priority
                assert entry.stream_id != s.stream_id
                if entry.is_direct:
                    assert not channels[s.stream_id].isdisjoint(
                        channels[entry.stream_id]
                    )
                else:
                    # Indirect elements never overlap the owner...
                    assert channels[s.stream_id].isdisjoint(
                        channels[entry.stream_id]
                    )
                    # ...and every intermediate is itself in the HP set.
                    for mid in entry.intermediates:
                        assert mid in hp

    @given(streams=stream_sets())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mutual_membership_implies_equal_priority(self, streams):
        """HP membership is antisymmetric w.r.t. priority: j in HP_k and
        k in HP_j can only hold together when P_j == P_k (membership
        requires a chain of equal-or-higher priorities each way)."""
        channels = stream_channels(streams, XY)
        hps = build_all_hp_sets(streams, channels=channels)
        for s in streams:
            for entry in hps[s.stream_id]:
                k = entry.stream_id
                if s.stream_id in hps[k]:
                    assert streams[k].priority == s.priority

    @given(streams=stream_sets())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_highest_priority_stream_unblocked_unless_peer_overlaps(
        self, streams
    ):
        channels = stream_channels(streams, XY)
        hps = build_all_hp_sets(streams, channels=channels)
        top = max(s.priority for s in streams)
        for s in streams:
            if s.priority == top:
                for entry in hps[s.stream_id]:
                    assert streams[entry.stream_id].priority == top


# ---------------------------------------------------------------------- #
# Blocking-dependency-graph properties
# ---------------------------------------------------------------------- #


class TestBDGProperties:
    @given(streams=stream_sets())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_edges_are_exactly_direct_blocking_pairs(self, streams):
        """u -> v exists iff v directly blocks u (shared channel, P_v >=
        P_u), restricted to the owner + HP members node set."""
        channels = stream_channels(streams, XY)
        blockers = direct_blockers(streams, channels)
        hps = build_all_hp_sets(streams, channels=channels)
        for s in streams:
            hp = hps[s.stream_id]
            g = build_bdg(hp, blockers)
            nodes = set(g.nodes)
            assert nodes == set(hp.ids()) | {s.stream_id}
            for u, v in g.edges:
                assert v in blockers[u]
                assert not channels[u].isdisjoint(channels[v])
                assert streams[v].priority >= streams[u].priority
            for u in nodes:
                for v in blockers[u]:
                    if v in nodes and v != u:
                        assert g.has_edge(u, v)

    @given(streams=stream_sets())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_node_modes_match_hp_entries(self, streams):
        channels = stream_channels(streams, XY)
        blockers = direct_blockers(streams, channels)
        hps = build_all_hp_sets(streams, channels=channels)
        for s in streams:
            hp = hps[s.stream_id]
            g = build_bdg(hp, blockers)
            assert g.nodes[s.stream_id]["mode"] == "owner"
            for entry in hp:
                expected = "DIRECT" if entry.is_direct else "INDIRECT"
                assert g.nodes[entry.stream_id]["mode"] == expected

    @given(streams=stream_sets())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bfs_layers_partition_and_respect_distance(self, streams):
        """Layer 0 is the owner; layers partition the nodes; every
        reachable node at depth d has a predecessor at depth d - 1."""
        channels = stream_channels(streams, XY)
        blockers = direct_blockers(streams, channels)
        hps = build_all_hp_sets(streams, channels=channels)
        for s in streams:
            g = build_bdg(hps[s.stream_id], blockers)
            layers = bfs_layers(g, s.stream_id)
            assert layers[0] == (s.stream_id,)
            flat = [n for layer in layers for n in layer]
            assert sorted(flat) == sorted(g.nodes)
            assert len(flat) == len(set(flat))
            # Reachable set from the owner.
            reach = {s.stream_id}
            stack = [s.stream_id]
            while stack:
                for v in g.successors(stack.pop()):
                    if v not in reach:
                        reach.add(v)
                        stack.append(v)
            depth = {n: d for d, layer in enumerate(layers) for n in layer}
            for n in g.nodes:
                if n == s.stream_id or n not in reach:
                    continue  # unreachable nodes ride in the final layer
                assert any(
                    depth[p] == depth[n] - 1 for p in g.predecessors(n)
                ), f"node {n} at depth {depth[n]} has no parent above"


# ---------------------------------------------------------------------- #
# Timing-diagram properties
# ---------------------------------------------------------------------- #


class TestDiagramProperties:
    @given(rows=diagram_rows(), dtime=st.integers(1, 120))
    @settings(max_examples=80, deadline=None)
    def test_structural_invariants(self, rows, dtime):
        d = generate_init_diagram(99, rows, dtime)
        # (1) no slot is allocated by two rows;
        if d.num_rows:
            assert d.allocated[:, 1:].sum(axis=0).max() <= 1
        # (2) result busy mask is the union of allocations;
        union = d.allocated.any(axis=0) if d.num_rows else \
            np.zeros(dtime + 1, bool)
        assert np.array_equal(union, d.result_busy())
        # (3) satisfied instances allocate exactly C slots inside their
        #     window; unsatisfied ones fewer.
        for s in rows:
            for inst in d.instances[s.stream_id]:
                lo, hi = inst.release + 1, min(inst.release + s.period, dtime)
                assert all(lo <= t <= hi for t in inst.occupied())
                if inst.satisfied:
                    assert len(inst.allocated) == s.length
                else:
                    assert len(inst.allocated) < s.length
        # (4) a row's waiting and allocated slots never coincide.
        assert not (d.allocated & d.waiting).any()

    @given(rows=diagram_rows(), dtime=st.integers(1, 100))
    @settings(max_examples=60, deadline=None)
    def test_prefix_stability(self, rows, dtime):
        """Extending the horizon never changes the diagram's prefix."""
        d1 = generate_init_diagram(99, rows, dtime)
        d2 = generate_init_diagram(99, rows, dtime + 37)
        assert np.array_equal(
            d1.allocated[:, : dtime + 1], d2.allocated[:, : dtime + 1]
        )

    @given(rows=diagram_rows(max_rows=4), latency=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_upper_bound_monotone_in_latency(self, rows, latency):
        d = generate_init_diagram(99, rows, 300)
        u1 = d.upper_bound(latency)
        u2 = d.upper_bound(latency + 1)
        if u1 > 0 and u2 > 0:
            assert u2 > u1


# ---------------------------------------------------------------------- #
# Analyzer properties
# ---------------------------------------------------------------------- #


class TestAnalyzerProperties:
    @given(streams=stream_sets(max_streams=6))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bound_at_least_latency(self, streams):
        an = FeasibilityAnalyzer(streams, XY)
        for s in an.streams:
            u = an.upper_bound(s.stream_id, max_horizon=1 << 14)
            if u > 0:
                assert u >= s.latency

    @given(streams=stream_sets(max_streams=6))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_modify_never_looser_than_direct(self, streams):
        mod = FeasibilityAnalyzer(streams, XY, use_modify=True)
        direct = FeasibilityAnalyzer(streams, XY, use_modify=False)
        for s in streams:
            u_m = mod.upper_bound(s.stream_id, max_horizon=1 << 14)
            u_d = direct.upper_bound(s.stream_id, max_horizon=1 << 14)
            if u_d > 0:
                assert 0 < u_m <= u_d

    @given(streams=stream_sets(max_streams=5), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_adding_a_lower_priority_stream_never_tightens_bounds(
        self, streams, seed
    ):
        """Bounds are monotone under adding interference below everyone."""
        an1 = FeasibilityAnalyzer(streams, XY)
        rng = np.random.default_rng(seed)
        src = int(rng.integers(0, MESH.num_nodes))
        dst = int(rng.integers(0, MESH.num_nodes - 1))
        if dst >= src:
            dst += 1
        lowest = min(s.priority for s in streams) - 1
        extra = MessageStream(
            stream_id=999, src=src, dst=dst,
            priority=max(lowest, 0) if lowest > 0 else 1,
            period=50, length=5, deadline=100,
        )
        # Only meaningful when the new stream really is strictly lowest.
        if extra.priority >= min(s.priority for s in streams):
            return
        bigger = StreamSet(streams)
        bigger.add(extra)
        an2 = FeasibilityAnalyzer(bigger, XY)
        for s in streams:
            u1 = an1.upper_bound(s.stream_id, max_horizon=1 << 14)
            u2 = an2.upper_bound(s.stream_id, max_horizon=1 << 14)
            assert u1 == u2  # lower-priority traffic is invisible to them


# ---------------------------------------------------------------------- #
# Torus dateline properties
# ---------------------------------------------------------------------- #

from repro.topology import Torus, TorusDimensionOrderRouting

TORUS = Torus((7, 5))
TORUS_RT = TorusDimensionOrderRouting(TORUS)
torus_nodes = st.integers(min_value=0, max_value=TORUS.num_nodes - 1)


class TestTorusRoutingProperties:
    @given(src=torus_nodes, dst=torus_nodes)
    @settings(max_examples=150, deadline=None)
    def test_minimal_and_valid(self, src, dst):
        path = TORUS_RT.route(src, dst)
        assert len(path) - 1 == TORUS.hop_distance(src, dst)
        for u, v in zip(path[:-1], path[1:]):
            assert TORUS.has_channel(u, v)

    @given(src=torus_nodes, dst=torus_nodes)
    @settings(max_examples=150, deadline=None)
    def test_dateline_classes_well_formed(self, src, dst):
        """Classes are 0/1, aligned with the route, and within each
        dimension's segment switch from 0 to 1 at most once (never back)."""
        if src == dst:
            return
        classes = TORUS_RT.route_classes(src, dst)
        chans = TORUS_RT.route_channels(src, dst)
        assert len(classes) == len(chans)
        assert set(classes) <= {0, 1}

        def dim_of(ch):
            cu, cv = TORUS.coords(ch[0]), TORUS.coords(ch[1])
            return next(i for i in range(len(cu)) if cu[i] != cv[i])

        segments = {}
        for ch, cls in zip(chans, classes):
            segments.setdefault(dim_of(ch), []).append(cls)
        for seg in segments.values():
            # Monotone non-decreasing within a dimension segment.
            assert all(a <= b for a, b in zip(seg[:-1], seg[1:]))

    @given(src=torus_nodes, dst=torus_nodes)
    @settings(max_examples=100, deadline=None)
    def test_class_1_only_after_wrap(self, src, dst):
        """A route that never crosses a wrap link stays in class 0."""
        if src == dst:
            return
        chans = TORUS_RT.route_channels(src, dst)
        classes = TORUS_RT.route_classes(src, dst)

        def is_wrap(ch):
            cu, cv = TORUS.coords(ch[0]), TORUS.coords(ch[1])
            return any(abs(a - b) > 1 for a, b in zip(cu, cv))

        if not any(is_wrap(ch) for ch in chans):
            assert set(classes) == {0}
