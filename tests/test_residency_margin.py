"""Tests for the residency-margin correction (finding F-4).

The paper's analysis charges an equal-priority interfering instance exactly
its ``C`` channel slots; in reality the instance owns the shared VC one
flit time longer (tail drain), making the bound optimistic by one slot.
These tests replay the exact counterexample the soundness campaign found
(seed 3 of the high-interference regime) and check the corrected analysis.
"""

import pytest

from repro.analysis.experiments import inflate_periods
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError
from repro.sim import PaperWorkload, WormholeSimulator
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


@pytest.fixture(scope="module")
def counterexample(net):
    """The seed-3 workload of the high-interference soundness regime."""
    mesh, rt = net
    wl = PaperWorkload(num_streams=15, priority_levels=3,
                       period_range=(100, 250), length_range=(8, 20),
                       seed=3)
    return inflate_periods(wl.generate(mesh), rt,
                           max_horizon=1 << 16).streams


class TestCounterexample:
    def test_paper_analysis_is_violated(self, net, counterexample):
        mesh, rt = net
        an = FeasibilityAnalyzer(counterexample, rt)
        u = an.upper_bound(11)
        sim = WormholeSimulator(mesh, rt, counterexample)
        stats = sim.simulate_streams(8_000)
        assert stats.max_delay(11) == u + 1  # the documented +1 violation

    def test_margin_one_restores_soundness(self, net, counterexample):
        mesh, rt = net
        an = FeasibilityAnalyzer(counterexample, rt, residency_margin=1)
        u = an.upper_bound(11)
        sim = WormholeSimulator(mesh, rt, counterexample)
        stats = sim.simulate_streams(8_000)
        assert stats.max_delay(11) <= u

    def test_blocker_is_equal_priority(self, net, counterexample):
        """The violating interference comes from an equal-priority stream
        (separate-VC preemption by higher priorities is charged exactly)."""
        mesh, rt = net
        an = FeasibilityAnalyzer(counterexample, rt)
        hp = an.hp_sets[11]
        assert all(
            counterexample[e.stream_id].priority
            == counterexample[11].priority
            for e in hp
        )


class TestMarginSemantics:
    def test_negative_margin_rejected(self, net):
        mesh, rt = net
        s = MessageStream(0, 0, 1, priority=1, period=50, length=5,
                          deadline=50)
        with pytest.raises(AnalysisError):
            FeasibilityAnalyzer(StreamSet([s]), rt, residency_margin=-1)

    def test_margin_only_touches_equal_priority(self, net):
        mesh, rt = net
        lo = MessageStream(0, mesh.node_xy(1, 0), mesh.node_xy(6, 0),
                           priority=1, period=200, length=5, deadline=200)
        hi = MessageStream(1, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                           priority=2, period=200, length=9, deadline=200)
        streams = StreamSet([lo, hi])
        base = FeasibilityAnalyzer(streams, rt).upper_bound(0)
        margined = FeasibilityAnalyzer(
            streams, rt, residency_margin=3
        ).upper_bound(0)
        # hi has strictly higher priority: no margin applied.
        assert margined == base

    def test_margin_grows_bound_per_instance(self, net):
        mesh, rt = net
        a = MessageStream(0, mesh.node_xy(1, 0), mesh.node_xy(6, 0),
                          priority=1, period=400, length=20, deadline=400)
        b = MessageStream(1, mesh.node_xy(0, 0), mesh.node_xy(5, 0),
                          priority=1, period=400, length=9, deadline=400)
        streams = StreamSet([a, b])
        base = FeasibilityAnalyzer(streams, rt).upper_bound(0)
        m1 = FeasibilityAnalyzer(streams, rt,
                                 residency_margin=1).upper_bound(0)
        m2 = FeasibilityAnalyzer(streams, rt,
                                 residency_margin=2).upper_bound(0)
        # One equal-priority instance before the bound: +1 slot per margin.
        assert m1 == base + 1
        assert m2 == base + 2

    def test_margin_zero_is_paper(self, net, counterexample):
        mesh, rt = net
        a = FeasibilityAnalyzer(counterexample, rt)
        b = FeasibilityAnalyzer(counterexample, rt, residency_margin=0)
        for s in counterexample:
            assert a.upper_bound(s.stream_id) == b.upper_bound(s.stream_id)
