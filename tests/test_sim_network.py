"""Integration-grade unit tests for the wormhole simulator
(repro.sim.network)."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.errors import SimulationError
from repro.sim import (
    FCFSArbiter,
    PriorityPreemptiveArbiter,
    RoundRobinArbiter,
    WormholeSimulator,
)
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=1000, length=5, deadline=None):
    return MessageStream(
        i, mesh.node_xy(*src), mesh.node_xy(*dst), priority=priority,
        period=period, length=length, deadline=deadline or period,
    )


class TestNoLoadLatency:
    @pytest.mark.parametrize(
        "src,dst,length",
        [((0, 0), (4, 3), 5), ((7, 3), (7, 7), 4), ((9, 9), (0, 0), 1),
         ((0, 0), (1, 0), 12)],
    )
    def test_exactly_h_plus_c_minus_1(self, net, src, dst, length):
        mesh, rt = net
        s = ms(0, mesh, src, dst, length=length)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(1)
        hops = rt.hop_count(s.src, s.dst)
        assert stats.samples(0) == (hops + length - 1,)

    def test_every_period_no_contention(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (5, 0), length=4, period=50)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(500)
        assert stats.stream_stats(0).count == 10
        assert stats.stream_stats(0).maximum == 5 + 4 - 1
        assert stats.stream_stats(0).minimum == 5 + 4 - 1

    def test_vc_capacity_one_breaks_pipelining(self, net):
        """Documents the modelling choice: depth-1 VCs with pre-cycle
        crediting stall every other flit, roughly doubling body latency."""
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (5, 0), length=10)
        fast = WormholeSimulator(mesh, rt, StreamSet([s]))
        slow = WormholeSimulator(mesh, rt, StreamSet([s]), vc_capacity=1)
        d_fast = fast.simulate_streams(1).samples(0)[0]
        d_slow = slow.simulate_streams(1).samples(0)[0]
        assert d_fast == 14
        assert d_slow > d_fast


class TestPreemption:
    def test_high_priority_sees_no_load_latency(self, net):
        mesh, rt = net
        low = ms(0, mesh, (0, 1), (5, 1), priority=1, period=40, length=30,
                 deadline=5000)
        high = ms(1, mesh, (1, 1), (4, 1), priority=2, period=100, length=5)
        sim = WormholeSimulator(mesh, rt, StreamSet([low, high]), warmup=500)
        stats = sim.simulate_streams(10_000)
        assert stats.max_delay(1) == 3 + 5 - 1

    def test_low_priority_still_progresses(self, net):
        mesh, rt = net
        low = ms(0, mesh, (0, 1), (5, 1), priority=1, period=100, length=10,
                 deadline=5000)
        high = ms(1, mesh, (1, 1), (4, 1), priority=2, period=30, length=10)
        sim = WormholeSimulator(mesh, rt, StreamSet([low, high]), warmup=500)
        stats = sim.simulate_streams(10_000)
        assert stats.stream_stats(0).count > 0
        assert stats.max_delay(0) > low.length + 5 - 1  # it did get blocked

    def test_single_vc_mode_shows_priority_inversion(self, net):
        """With one VC per port the high-priority stream waits behind
        bulk traffic it would preempt under the paper's scheme."""
        mesh, rt = net
        low = ms(0, mesh, (0, 1), (6, 1), priority=1, period=45, length=40,
                 deadline=5000)
        high = ms(1, mesh, (1, 1), (5, 1), priority=2, period=100, length=5)
        preempt = WormholeSimulator(mesh, rt, StreamSet([low, high]),
                                    warmup=500)
        classic = WormholeSimulator(mesh, rt, StreamSet([low, high]),
                                    warmup=500, vc_mode="single")
        d_p = preempt.simulate_streams(10_000).max_delay(1)
        d_c = classic.simulate_streams(10_000).max_delay(1)
        assert d_p == 4 + 5 - 1
        assert d_c > 2 * d_p


class TestSamePriorityContention:
    def test_messages_never_interleave(self, net):
        """Two equal-priority streams crossing the same channel must each
        measure a delay that is at least their no-load latency and finish
        all messages (VC ownership serialises them)."""
        mesh, rt = net
        a = ms(0, mesh, (0, 2), (6, 2), priority=1, period=60, length=20,
               deadline=5000)
        b = ms(1, mesh, (1, 2), (7, 2), priority=1, period=60, length=20,
               deadline=5000)
        sim = WormholeSimulator(mesh, rt, StreamSet([a, b]), warmup=500)
        stats = sim.simulate_streams(12_000)
        assert stats.stream_stats(0).count > 0
        assert stats.stream_stats(1).count > 0
        for sid, stream in ((0, a), (1, b)):
            hops = rt.hop_count(stream.src, stream.dst)
            assert stats.stream_stats(sid).minimum >= hops + stream.length - 1


class TestBackpressure:
    def test_source_queueing_counted_in_delay(self, net):
        """A period shorter than the service time builds a source queue,
        and the measured delay includes the queueing."""
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (2, 0), length=20, period=10, deadline=5000)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(200)
        delays = stats.samples(0)
        assert delays[0] == 2 + 20 - 1
        # Each later message waits ~(service - period) longer than the last.
        assert all(b > a for a, b in zip(delays[:-1], delays[1:]))


class TestModesAndValidation:
    def test_unknown_vc_mode(self, net):
        mesh, rt = net
        s = StreamSet([ms(0, mesh, (0, 0), (1, 0))])
        with pytest.raises(SimulationError):
            WormholeSimulator(mesh, rt, s, vc_mode="bogus")

    def test_empty_streams_rejected(self, net):
        mesh, rt = net
        with pytest.raises(SimulationError):
            WormholeSimulator(mesh, rt, StreamSet())

    def test_li_mode_runs_and_matches_no_load(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (4, 0), priority=2, length=5)
        lo = ms(1, mesh, (0, 1), (4, 1), priority=1, length=5)
        sim = WormholeSimulator(
            mesh, rt, StreamSet([s, lo]), vc_mode="li"
        )
        stats = sim.simulate_streams(1)
        assert stats.samples(0) == (8,)
        assert stats.samples(1) == (8,)

    def test_negative_phase_rejected(self, net):
        mesh, rt = net
        s = StreamSet([ms(0, mesh, (0, 0), (1, 0))])
        sim = WormholeSimulator(mesh, rt, s)
        with pytest.raises(SimulationError):
            sim.simulate_streams(10, phases={0: -1})

    def test_phases_shift_releases(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (3, 0), length=2, period=100)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(100, phases={0: 30})
        # One release at t=30; delay unchanged by the phase.
        assert stats.stream_stats(0).count == 1
        assert stats.samples(0) == (3 + 2 - 1,)


class TestArbiters:
    @pytest.mark.parametrize(
        "arbiter", [PriorityPreemptiveArbiter(), FCFSArbiter(),
                    RoundRobinArbiter()]
    )
    def test_all_arbiters_complete_workload(self, net, arbiter):
        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 3), (6, 3), priority=1, period=80, length=15,
               deadline=5000),
            ms(1, mesh, (1, 3), (7, 3), priority=2, period=90, length=15,
               deadline=5000),
            ms(2, mesh, (2, 3), (8, 3), priority=3, period=70, length=15,
               deadline=5000),
        ])
        sim = WormholeSimulator(mesh, rt, streams, arbiter=arbiter)
        stats = sim.simulate_streams(5_000)
        assert stats.unfinished == 0
        for sid in (0, 1, 2):
            assert stats.stream_stats(sid).count > 0


class TestDeterminism:
    def test_identical_runs_identical_stats(self, net):
        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 3), (6, 3), priority=1, period=80, length=15,
               deadline=5000),
            ms(1, mesh, (1, 3), (7, 3), priority=2, period=90, length=15,
               deadline=5000),
        ])
        runs = []
        for _ in range(2):
            sim = WormholeSimulator(mesh, rt, streams)
            stats = sim.simulate_streams(5_000)
            runs.append({i: stats.samples(i) for i in stats.stream_ids()})
        assert runs[0] == runs[1]

    def test_conservation_of_flits(self, net):
        """Total transfers = sum over finished messages of C * (hops)
        when everything drains (each flit crosses each channel once)."""
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (4, 0), length=7, period=40)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(400)
        n = stats.stream_stats(0).count
        assert stats.unfinished == 0
        assert sim.total_transfers == n * 7 * 4
