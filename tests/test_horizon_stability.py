"""Horizon-independence of the bound search.

``FeasibilityAnalyzer.upper_bound`` finds U with a busy-window-guessed
horizon plus a guard (every window containing a slot <= U must close
before the horizon, because Modify_Diagram decisions near a truncated
boundary can shift). These tests pin that logic: the searched bound must
equal the bound computed at a much larger horizon, across random
workloads and both Modify settings.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.feasibility import FeasibilityAnalyzer
from tests.test_properties import XY, stream_sets

BIG = 1 << 14


class TestHorizonStability:
    @given(streams=stream_sets(max_streams=6))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_search_matches_large_horizon(self, streams):
        an = FeasibilityAnalyzer(streams, XY)
        for s in an.streams:
            searched = an.upper_bound(s.stream_id, max_horizon=BIG)
            direct = an.cal_u(s.stream_id, horizon=BIG).upper_bound
            if searched > 0 and direct > 0:
                assert searched == direct
            elif direct > 0:
                # The search may give up earlier than BIG only if it
                # reached its cap; with the same cap it must agree.
                assert searched == direct

    @given(streams=stream_sets(max_streams=5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_search_matches_large_horizon_without_modify(self, streams):
        an = FeasibilityAnalyzer(streams, XY, use_modify=False)
        for s in an.streams:
            searched = an.upper_bound(s.stream_id, max_horizon=BIG)
            direct = an.cal_u(s.stream_id, horizon=BIG).upper_bound
            if direct > 0:
                assert searched == direct

    def test_paper_example_stable(self, paper_streams, xy10,
                                  paper_hp_override):
        an = FeasibilityAnalyzer(paper_streams, xy10,
                                 hp_override=paper_hp_override)
        for sid, expected in {0: 7, 1: 8, 2: 26, 3: 20, 4: 33}.items():
            assert an.upper_bound(sid) == expected
            assert an.cal_u(sid, horizon=BIG).upper_bound == expected
