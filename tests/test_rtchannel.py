"""Tests for the store-and-forward real-time channel substrate
(repro.rtchannel)."""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError, SimulationError
from repro.rtchannel import StoreAndForwardSimulator, holistic_bounds
from repro.sim import PaperWorkload, WormholeSimulator
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=1000, length=5, deadline=None):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=deadline or period)


class TestSAFSimulator:
    def test_no_load_latency_is_h_times_c(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (4, 0), length=5)
        sim = StoreAndForwardSimulator(mesh, rt, StreamSet([s]))
        stats = sim.simulate_streams(1)
        assert stats.samples(0) == (4 * 5,)

    def test_wormhole_beats_saf_unloaded(self, net):
        """The motivation for wormhole switching: h + C - 1 << h * C."""
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (8, 0), length=20)
        saf = StoreAndForwardSimulator(mesh, rt, StreamSet([s]))
        worm = WormholeSimulator(mesh, rt, StreamSet([s]))
        d_saf = saf.simulate_streams(1).samples(0)[0]
        d_worm = worm.simulate_streams(1).samples(0)[0]
        assert d_saf == 8 * 20
        assert d_worm == 8 + 20 - 1
        assert d_saf > 5 * d_worm

    def test_link_serialises_packets(self, net):
        """Two same-release packets over one link: second waits a full
        packet time (non-preemptive service)."""
        mesh, rt = net
        a = ms(0, mesh, (0, 0), (2, 0), priority=2, length=10, period=100)
        b = ms(1, mesh, (0, 0), (2, 0), priority=1, length=10, period=100)
        sim = StoreAndForwardSimulator(mesh, rt, StreamSet([a, b]))
        stats = sim.simulate_streams(1)
        # a (higher priority) goes first: 2 hops x 10 = 20; b starts its
        # first hop at t=10, pipelines behind: finishes at 30.
        assert stats.samples(0) == (20,)
        assert stats.samples(1) == (30,)

    def test_priority_scheduler_orders_queue(self, net):
        mesh, rt = net
        lo = ms(0, mesh, (0, 0), (3, 0), priority=1, length=10, period=400)
        hi = ms(1, mesh, (0, 0), (3, 0), priority=2, length=10, period=400)
        sim = StoreAndForwardSimulator(mesh, rt, StreamSet([lo, hi]))
        stats = sim.simulate_streams(1)
        assert stats.samples(1)[0] < stats.samples(0)[0]

    def test_edf_scheduler_orders_by_deadline(self, net):
        mesh, rt = net
        relaxed = ms(0, mesh, (0, 0), (3, 0), priority=2, length=10,
                     period=400, deadline=400)
        urgent = ms(1, mesh, (0, 0), (3, 0), priority=1, length=10,
                    period=400, deadline=50)
        sim = StoreAndForwardSimulator(mesh, rt, StreamSet([relaxed, urgent]),
                                       scheduler="edf")
        stats = sim.simulate_streams(1)
        # EDF ignores the priority field: the tight-deadline packet wins.
        assert stats.samples(1)[0] < stats.samples(0)[0]

    def test_unknown_scheduler_rejected(self, net):
        mesh, rt = net
        s = StreamSet([ms(0, mesh, (0, 0), (1, 0))])
        with pytest.raises(SimulationError):
            StoreAndForwardSimulator(mesh, rt, s, scheduler="wfq")

    def test_empty_streams_rejected(self, net):
        mesh, rt = net
        with pytest.raises(SimulationError):
            StoreAndForwardSimulator(mesh, rt, StreamSet())

    def test_periodic_traffic_drains(self, net):
        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (5, 0), priority=1, period=60, length=12),
            ms(1, mesh, (1, 0), (6, 0), priority=2, period=80, length=12),
        ])
        sim = StoreAndForwardSimulator(mesh, rt, streams)
        stats = sim.simulate_streams(3_000)
        assert stats.unfinished == 0
        assert stats.stream_stats(0).count == 50
        assert stats.stream_stats(1).count == 38


class TestHolisticBounds:
    def test_no_load_bound(self, net):
        mesh, rt = net
        s = StreamSet([ms(0, mesh, (0, 0), (4, 0), length=5)])
        hb = holistic_bounds(s, rt)
        assert hb[0].bound == 20
        assert hb[0].converged
        assert len(hb[0].links) == 4
        assert all(l.response == 5 for l in hb[0].links)

    def test_blocking_from_lower_priority(self, net):
        mesh, rt = net
        hi = ms(0, mesh, (0, 0), (2, 0), priority=2, length=5, period=500)
        lo = ms(1, mesh, (1, 0), (3, 0), priority=1, length=9, period=500)
        hb = holistic_bounds(StreamSet([hi, lo]), rt)
        # hi shares link (1,0)->(2,0) with lo: non-preemptive blocking 9.
        shared = next(l for l in hb[0].links
                      if l.channel == (mesh.node_xy(1, 0),
                                       mesh.node_xy(2, 0)))
        assert shared.blocking == 9
        assert hb[0].bound == 5 + (9 + 5)

    def test_divergence_detected(self, net):
        mesh, rt = net
        hog = ms(0, mesh, (0, 0), (2, 0), priority=2, length=10, period=10)
        lo = ms(1, mesh, (1, 0), (3, 0), priority=1, length=5, period=100)
        hb = holistic_bounds(StreamSet([hog, lo]), rt,
                             max_bound=10_000)
        assert hb[1].bound == -1
        assert not hb[1].converged
        assert hb[1].feasible_within is None

    def test_empty_rejected(self, net):
        mesh, rt = net
        with pytest.raises(AnalysisError):
            holistic_bounds(StreamSet(), rt)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_soundness_against_simulation(self, net, seed):
        """Holistic bounds must cover simulated SAF delays (priority
        scheduler, critical instant and steady state)."""
        mesh, rt = net
        wl = PaperWorkload(num_streams=12, priority_levels=3, seed=seed,
                           period_range=(300, 700))
        streams = wl.generate(mesh)
        hb = holistic_bounds(streams, rt)
        sim = StoreAndForwardSimulator(mesh, rt, streams)
        stats = sim.simulate_streams(8_000)
        for sid in stats.stream_ids():
            bound = hb[sid].bound
            if bound > 0 and hb[sid].converged:
                assert stats.max_delay(sid) <= bound, (
                    f"stream {sid}: {stats.max_delay(sid)} > {bound}"
                )

    def test_wormhole_bound_tighter_unloaded_routes(self, net):
        """For a lone stream the wormhole bound (h + C - 1) always beats
        the store-and-forward bound (h * C) — the paper's pitch."""
        from repro.core.feasibility import FeasibilityAnalyzer

        mesh, rt = net
        s = StreamSet([ms(0, mesh, (2, 3), (8, 7), length=25, period=2000)])
        worm = FeasibilityAnalyzer(s, rt).upper_bound(0)
        saf = holistic_bounds(s, rt)[0].bound
        assert worm == 10 + 25 - 1
        assert saf == 10 * 25
        assert worm < saf
