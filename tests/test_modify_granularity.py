"""Tests for the slot-granular Modify_Diagram variant.

The paper's prose releases individual *slots* while its example releases
whole *instances*; both readings are implemented (see repro.core.modify).
Key invariant: slot granularity is never looser than instance granularity
(any instance-level release is the union of its slot-level releases).
"""

import pytest
from hypothesis import given, settings

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import HPEntry, HPSet
from repro.core.modify import modify_diagram, releasable_slots
from repro.core.streams import MessageStream, StreamSet
from repro.core.timing_diagram import generate_init_diagram
from repro.errors import AnalysisError
from tests.test_properties import XY, stream_sets
from tests.test_reference_equivalence import modify_cases


def ms(i, priority, period, length):
    return MessageStream(i, 0, 1, priority=priority, period=period,
                         length=length, deadline=period)


class TestReleasableSlots:
    def test_requires_intermediates(self):
        d = generate_init_diagram(9, (ms(0, 2, 10, 2),), 20)
        with pytest.raises(AnalysisError):
            releasable_slots(d, 0, frozenset())

    def test_slots_are_superset_of_released_instances(self):
        rows = (ms(0, 2, 10, 2), ms(1, 1, 40, 3))
        d = generate_init_diagram(9, rows, 40)
        from repro.core.modify import releasable_instances

        slots = set(int(t) for t in releasable_slots(d, 0, frozenset({1})))
        for idx in releasable_instances(d, 0, frozenset({1})):
            inst = d.instances[0][idx]
            assert set(inst.occupied()).issubset(slots)


class TestGranularityComparison:
    def test_fig6_same_result(self):
        """On the paper's Fig. 6 every release is whole-instance anyway."""
        owner = ms(4, 0, 100, 6)
        streams = StreamSet([ms(1, 3, 10, 2), ms(2, 2, 15, 3),
                             ms(3, 1, 13, 4), owner])
        hp = HPSet(4, [HPEntry.indirect(1, [2]), HPEntry.indirect(2, [3]),
                       HPEntry.direct(3)])
        blockers = {4: (3,), 3: (2,), 2: (1,), 1: ()}
        inst, _ = modify_diagram(owner, hp, streams, blockers, 30,
                                 granularity="instance")
        slot, _ = modify_diagram(owner, hp, streams, blockers, 30,
                                 granularity="slot")
        assert inst.upper_bound(6) == slot.upper_bound(6) == 22

    def test_unknown_granularity_rejected(self):
        owner = ms(4, 0, 100, 6)
        streams = StreamSet([ms(1, 3, 10, 2), owner])
        hp = HPSet(4, [HPEntry.direct(1)])
        with pytest.raises(AnalysisError):
            modify_diagram(owner, hp, streams, {4: (1,), 1: ()}, 30,
                           granularity="flit")

    @given(case=modify_cases())
    @settings(max_examples=80, deadline=None)
    def test_slot_never_looser(self, case):
        streams, blockers, hps = case
        for owner in streams:
            hp = hps[owner.stream_id]
            if not hp.indirect_ids():
                continue
            dtime = owner.deadline
            inst, _ = modify_diagram(owner, hp, streams, blockers, dtime,
                                     granularity="instance")
            slot, _ = modify_diagram(owner, hp, streams, blockers, dtime,
                                     granularity="slot")
            assert slot.num_free_slots() >= inst.num_free_slots()

    @given(streams=stream_sets(max_streams=6))
    @settings(max_examples=20, deadline=None)
    def test_analyzer_slot_bounds_never_looser(self, streams):
        a_inst = FeasibilityAnalyzer(streams, XY)
        a_slot = FeasibilityAnalyzer(streams, XY,
                                     modify_granularity="slot")
        for s in streams:
            u_i = a_inst.upper_bound(s.stream_id, max_horizon=1 << 13)
            u_s = a_slot.upper_bound(s.stream_id, max_horizon=1 << 13)
            if u_i > 0 and u_s > 0:
                assert u_s <= u_i


class TestSlotGranularityUnsound:
    """Finding F-6: the paper's literal per-slot prose over-releases.

    Replays the soundness-campaign counterexample (seed 1 of the
    high-interference regime): the slot-granular bound is violated by the
    simulation while the instance-granular bound holds.
    """

    @pytest.fixture(scope="class")
    def campaigns(self):
        from repro.analysis import run_soundness_campaign

        kwargs = dict(
            workloads=1, num_streams=15, priority_levels=3,
            period_range=(100, 250), length_range=(8, 20),
            sim_time=5_000, seed0=1, residency_margin=1,
            include_random_phases=False,
        )
        return (
            run_soundness_campaign(modify_granularity="instance", **kwargs),
            run_soundness_campaign(modify_granularity="slot", **kwargs),
        )

    def test_instance_granularity_sound(self, campaigns):
        instance, _ = campaigns
        assert instance.sound

    def test_slot_granularity_violated(self, campaigns):
        _, slot = campaigns
        assert not slot.sound
        worst = max(v.excess for v in slot.violations)
        assert worst >= 10  # double-digit violation, not a margin effect
