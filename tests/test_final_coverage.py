"""Final odds-and-ends coverage batch."""

import pytest

from repro.analysis.tables import format_table
from repro.core.render import _time_ruler
from repro.sim.gantt import _SYMBOLS, GanttRecorder


class TestTimeRuler:
    def test_major_marks(self):
        ruler = _time_ruler(20, label_width=3, major=10)
        assert ruler.startswith("   ")
        cells = ruler[3:]
        assert cells[9] == "0"    # slot 10 -> last digit of 10
        assert cells[19] == "0"   # slot 20
        assert cells[4] == "+"    # slot 5 minor mark

    def test_custom_major(self):
        cells = _time_ruler(8, label_width=0, major=4)
        assert cells[3] == "4" and cells[7] == "8"


class TestGanttSymbols:
    def test_symbol_table_spans_62(self):
        assert len(_SYMBOLS) == 62
        assert _SYMBOLS[0] == "0" and _SYMBOLS[10] == "a"
        assert _SYMBOLS[36] == "A"

    def test_overflow_symbol(self):
        from repro.core.streams import MessageStream
        from repro.sim import render_gantt
        from repro.sim.flit import Message

        g = GanttRecorder()
        msg = Message(0, stream_id=999, priority=1, src=0, dst=1,
                      length=1, release=0, path=(0, 1))
        g.on_transfer(5, (0, 1), msg)
        out = render_gantt(g)
        assert "*" in out


class TestFormatTableInflationNote:
    def test_inflation_line_present_when_periods_raised(self):
        from repro.analysis import run_table_experiment
        from repro.sim import PaperWorkload

        # High interference forces the T := U rule to fire.
        wl = PaperWorkload(num_streams=10, priority_levels=1, seed=0,
                           period_range=(60, 120), length_range=(20, 40))
        r = run_table_experiment(
            name="inflate_note", num_streams=10, priority_levels=1,
            seed=0, sim_time=3_000, warmup=300, workload=wl,
        )
        text = format_table(r)
        if r.inflation.inflated:
            assert "periods inflated" in text
        else:  # pragma: no cover - workload-dependent
            assert "periods inflated" not in text
