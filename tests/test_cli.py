"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "table9"])


class TestExampleCommand:
    def test_prints_paper_bounds(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "U = {0: 7, 1: 8, 2: 26, 3: 20, 4: 33}" in out
        assert "success" in out
        assert "HP_4" in out


class TestTableCommand:
    def test_small_table_run(self, capsys):
        code = main(["table", "table1", "--seed", "0",
                     "--sim-time", "4000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "P    1" in out


class TestSoundnessCommand:
    def test_sound_campaign_exit_zero(self, capsys):
        code = main(["soundness", "--workloads", "1", "--streams", "6",
                     "--levels", "2", "--sim-time", "2000"])
        assert code == 0
        assert "sound" in capsys.readouterr().out


class TestCheckCommand:
    def test_feasible_set(self, tmp_path, capsys):
        spec = {
            "mesh": {"width": 10, "height": 10},
            "streams": [
                {"id": 0, "src": [0, 0], "dst": [5, 0], "priority": 2,
                 "period": 100, "length": 10, "deadline": 50},
            ],
        }
        path = tmp_path / "streams.json"
        path.write_text(json.dumps(spec))
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out
        assert "U=   14" in out

    def test_infeasible_set_exit_one(self, tmp_path, capsys):
        spec = {
            "mesh": {"width": 10, "height": 10},
            "streams": [
                {"id": 0, "src": [0, 0], "dst": [5, 0], "priority": 1,
                 "period": 100, "length": 10, "deadline": 5},
            ],
        }
        path = tmp_path / "streams.json"
        path.write_text(json.dumps(spec))
        assert main(["check", str(path)]) == 1
        assert "infeasible" in capsys.readouterr().out

    def test_node_id_form(self, tmp_path, capsys):
        spec = {
            "mesh": {"width": 4, "height": 4},
            "streams": [
                {"id": 0, "src": 0, "dst": 3, "priority": 1,
                 "period": 50, "length": 4, "deadline": 50},
            ],
        }
        path = tmp_path / "streams.json"
        path.write_text(json.dumps(spec))
        assert main(["check", str(path)]) == 0

    def test_repro_error_exit_two(self, tmp_path, capsys):
        spec = {
            "mesh": {"width": 4, "height": 4},
            "streams": [
                {"id": 0, "src": 0, "dst": 0, "priority": 1,
                 "period": 50, "length": 4, "deadline": 50},
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(spec))
        assert main(["check", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_stream_set_exit_two(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps(
            {"mesh": {"width": 4, "height": 4}, "streams": []}
        ))
        assert main(["check", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_exit_three(self, tmp_path, capsys):
        path = tmp_path / "mangled.json"
        path.write_text('{"mesh": {"width": 4')
        assert main(["check", str(path)]) == 3
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert str(path) in err

    def test_missing_file_exit_four(self, tmp_path, capsys):
        path = tmp_path / "does-not-exist.json"
        assert main(["check", str(path)]) == 4
        err = capsys.readouterr().err
        assert "no such file" in err
        assert str(path) in err

    def test_failure_codes_are_distinct(self, tmp_path):
        """The three failure modes must stay distinguishable by exit code."""
        missing = tmp_path / "gone.json"
        mangled = tmp_path / "mangled.json"
        mangled.write_text("[not json")
        infeasible = tmp_path / "infeasible.json"
        infeasible.write_text(json.dumps({
            "mesh": {"width": 4, "height": 4},
            "streams": [
                {"id": 0, "src": 0, "dst": 3, "priority": 1,
                 "period": 50, "length": 40, "deadline": 2},
            ],
        }))
        codes = {
            main(["check", str(infeasible)]),
            main(["check", str(mangled)]),
            main(["check", str(missing)]),
        }
        assert codes == {1, 3, 4}


class TestFuzzCommand:
    def test_small_sound_campaign(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seeds", "6", "--mesh", "3x3", "--jobs", "1",
            "--sim-time", "600", "--corpus", str(tmp_path / "corpus"),
        ])
        assert code == 0
        assert "sound: 0 violations" in capsys.readouterr().out

    def test_bad_mesh_exit_two(self, capsys):
        assert main(["fuzz", "--mesh", "bogus", "--jobs", "1"]) == 2
        assert "--mesh wants WxH" in capsys.readouterr().err

    def test_replay_missing_file_exit_four(self, tmp_path, capsys):
        path = tmp_path / "gone.json"
        assert main(["fuzz", "--replay", str(path)]) == 4
        assert "no such file" in capsys.readouterr().err

    def test_replay_malformed_json_exit_three(self, tmp_path, capsys):
        path = tmp_path / "mangled.json"
        path.write_text("{nope")
        assert main(["fuzz", "--replay", str(path)]) == 3
        assert "not valid JSON" in capsys.readouterr().err

    def test_self_test_catches_shrinks_and_replays(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main([
            "fuzz", "--self-test", "--jobs", "1", "--mesh", "3x3",
            "--sim-time", "600", "--corpus", str(corpus),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-test ok" in out
        entries = sorted(corpus.glob("cex-*.json"))
        assert entries, "self-test must persist a counterexample"
        # The persisted counterexample replays through the public path
        # and still reproduces (exit 1 by design: a reproducing
        # counterexample is a live finding).
        assert main(["fuzz", "--replay", str(entries[0])]) == 1
        assert "REPRODUCED" in capsys.readouterr().out


class TestServeLoadCommands:
    def test_serve_rejects_conflicting_listeners(self, capsys):
        assert main(["serve"]) == 2
        assert "exactly one of --socket or --host" in capsys.readouterr().err
        assert main(["serve", "--socket", "/tmp/x", "--host",
                     "127.0.0.1"]) == 2

    def test_serve_rejects_conflicting_topology(self, capsys):
        assert main(["serve", "--socket", "/tmp/x", "--mesh", "4x4",
                     "--topology", "{}"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_serve_rejects_bad_topology_json(self, capsys):
        assert main(["serve", "--socket", "/tmp/x",
                     "--topology", "{nope"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_load_requires_listener(self, capsys):
        assert main(["load"]) == 2
        assert ("exactly one of --socket, --host or --target"
                in capsys.readouterr().err)

    def test_serve_load_round_trip(self, tmp_path, capsys):
        """End-to-end over the real CLI: serve in a thread, load against it."""
        import threading

        sock = str(tmp_path / "broker.sock")
        state = str(tmp_path / "state")
        codes = {}
        server = threading.Thread(
            target=lambda: codes.update(
                serve=main(["serve", "--socket", sock, "--mesh", "6x6",
                            "--state-dir", state])
            )
        )
        server.start()
        code = main(["load", "--socket", sock, "--ops", "40", "--seed", "1",
                     "--target-live", "8", "--assert-stats", "--shutdown"])
        server.join(timeout=30)
        assert code == 0
        assert codes.get("serve") == 0
        out = capsys.readouterr().out
        assert "repro-broker listening on" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["ops"] == 40 and summary["errors"] == 0
        assert summary["server_stats"]["engine"]["ops"] > 0


class TestChaosCommand:
    def test_chaos_round_trip(self, tmp_path, capsys):
        code = main([
            "chaos", "--seed", "3", "--ops", "40", "--mesh", "6x6",
            "--target-live", "8", "--socket-fraction", "0.25",
            "--persistence-rate", "0.5", "--protocol-rate", "0.8",
            "--engine-rate", "0.4", "--restart-rate", "0.15",
            "--state-dir", str(tmp_path / "state"), "--min-faults", "10",
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        payload = json.loads(captured.out)
        assert payload["ok"] and payload["bit_identical"]
        assert payload["faults"]["total"] >= 10
        assert payload["faults"]["layers_covered"] == 3
        assert payload["acked_then_lost"] == []
        assert "recovery bit-identical" in captured.err

    def test_chaos_enforces_min_faults(self, capsys):
        code = main([
            "chaos", "--seed", "1", "--ops", "10",
            "--socket-fraction", "0", "--persistence-rate", "0",
            "--protocol-rate", "0", "--engine-rate", "0",
            "--min-faults", "5",
        ])
        assert code == 1
        assert "--min-faults" in capsys.readouterr().err

    def test_chaos_rejects_bad_mesh(self, capsys):
        assert main(["chaos", "--mesh", "wat"]) == 2
        assert "--mesh wants WxH" in capsys.readouterr().err


class TestCheckAnalysisFlag:
    def _problem(self, tmp_path):
        spec = {
            "mesh": {"width": 10, "height": 10},
            "streams": [
                {"id": 0, "src": [0, 0], "dst": [5, 0], "priority": 2,
                 "period": 100, "length": 10, "deadline": 50},
            ],
        }
        path = tmp_path / "streams.json"
        path.write_text(json.dumps(spec))
        return path

    def test_each_registered_backend_selectable(self, tmp_path, capsys):
        from repro.core import backends

        path = self._problem(tmp_path)
        for name in backends.names():
            assert main(["check", str(path), "--analysis", name]) == 0
            out = capsys.readouterr().out
            assert f"({name})" in out

    def test_unknown_backend_exit_two_not_silent_fallback(
        self, tmp_path, capsys
    ):
        path = self._problem(tmp_path)
        assert main(["check", str(path), "--analysis", "kim99"]) == 2
        captured = capsys.readouterr()
        assert "kim99" in captured.err
        # No verdict was printed: the typo must not silently mean kim98.
        assert "feasible" not in captured.out

    def test_unknown_backend_beats_missing_file(self, tmp_path, capsys):
        # Validation happens before I/O: a bad backend name on a missing
        # file reports the backend error (2), not the file error (4).
        gone = tmp_path / "gone.json"
        assert main(["check", str(gone), "--analysis", "kim99"]) == 2
        assert "kim99" in capsys.readouterr().err

    def test_all_check_exit_codes_distinct(self, tmp_path):
        """0 feasible / 1 infeasible / 2 invalid / 3 bad JSON / 4 no file."""
        feasible = self._problem(tmp_path)
        infeasible = tmp_path / "infeasible.json"
        infeasible.write_text(json.dumps({
            "mesh": {"width": 4, "height": 4},
            "streams": [
                {"id": 0, "src": 0, "dst": 3, "priority": 1,
                 "period": 50, "length": 40, "deadline": 2},
            ],
        }))
        mangled = tmp_path / "mangled.json"
        mangled.write_text("{nope")
        codes = [
            main(["check", str(feasible)]),
            main(["check", str(infeasible)]),
            main(["check", str(feasible), "--analysis", "typo"]),
            main(["check", str(mangled)]),
            main(["check", str(tmp_path / "gone.json")]),
        ]
        assert codes == [0, 1, 2, 3, 4]

    def test_report_out_carries_backend(self, tmp_path):
        path = self._problem(tmp_path)
        out = tmp_path / "report.json"
        assert main(["check", str(path), "--analysis", "tighter",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["streams"]["0"]["analysis"] == "tighter"

    def test_explain_analysis_flag(self, tmp_path, capsys):
        path = self._problem(tmp_path)
        assert main(["explain", str(path), "0",
                     "--analysis", "buffered"]) == 0
        assert capsys.readouterr().out
        assert main(["explain", str(path), "0",
                     "--analysis", "typo"]) == 2
        assert "typo" in capsys.readouterr().err


class TestFleetCommands:
    def test_fleet_chaos_round_trip(self, tmp_path, capsys):
        code = main([
            "chaos", "--fleet", "--seed", "0", "--ops", "60",
            "--tenants", "2", "--shards", "2", "--mesh", "5x5",
            "--target-live", "8", "--persistence-rate", "0.4",
            "--kill-rate", "0.10", "--state-dir", str(tmp_path),
            "--min-kills", "1",
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        payload = json.loads(captured.out)
        assert payload["ok"] and payload["bit_identical"]
        assert payload["kills"] >= 1
        assert payload["acked_then_lost"] == {}
        assert "fleet chaos seed=0" in captured.err

    def test_fleet_chaos_enforces_min_kills(self, capsys):
        code = main([
            "chaos", "--fleet", "--seed", "0", "--ops", "10",
            "--persistence-rate", "0", "--kill-rate", "0",
            "--min-kills", "1",
        ])
        assert code == 1
        assert "--min-kills" in capsys.readouterr().err

    def test_load_transport_flags_are_exclusive(self, capsys):
        assert main(["load", "--socket", "/tmp/x.sock", "--target",
                     "http://127.0.0.1:1", "--api-key", "k"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_load_target_needs_api_key(self, capsys):
        assert main(["load", "--target", "http://127.0.0.1:1"]) == 2
        assert "--api-key" in capsys.readouterr().err

    def test_gateway_rejects_bad_tenant_spec(self, capsys):
        assert main(["gateway", "--tenant", "nokey"]) == 2
        assert "NAME=KEY" in capsys.readouterr().err
