"""Unit tests for the parallel seed runner (repro.analysis.parallel)."""

import os

import pytest

from repro.analysis.parallel import map_seeds
from repro.errors import AnalysisError


def square(seed):
    return seed * seed


def table_ratio(seed):
    """A real (small) experiment, used for serial/parallel equivalence."""
    from repro.analysis import run_table_experiment

    r = run_table_experiment(
        name=f"par{seed}", num_streams=6, priority_levels=2, seed=seed,
        sim_time=2_000, warmup=200,
    )
    return {p: stats.mean for p, stats in r.rows.items()}


class TestMapSeeds:
    def test_serial_path(self):
        assert map_seeds(square, [3, 1, 2], processes=1) == [9, 1, 4]

    def test_preserves_seed_order(self):
        out = map_seeds(square, list(range(8)), processes=2)
        assert out == [s * s for s in range(8)]

    def test_single_seed_short_circuits(self):
        assert map_seeds(square, [5], processes=4) == [25]

    def test_empty_returns_empty(self):
        assert map_seeds(square, []) == []

    def test_empty_ignores_bad_knobs(self):
        # Empty input short-circuits before the pool is configured.
        assert map_seeds(square, [], processes=8, chunksize=999) == []

    def test_bad_processes_rejected(self):
        with pytest.raises(AnalysisError):
            map_seeds(square, [1], processes=0)

    def test_bad_chunksize_rejected(self):
        with pytest.raises(AnalysisError):
            map_seeds(square, [1, 2], processes=2, chunksize=0)

    def test_explicit_chunksize_keeps_order(self):
        out = map_seeds(square, list(range(10)), processes=2, chunksize=3)
        assert out == [s * s for s in range(10)]

    def test_default_chunksize_keeps_order(self):
        # 40 seeds / (4 waves * 2 workers) -> chunks of 5; order must hold.
        out = map_seeds(square, list(range(40)), processes=2)
        assert out == [s * s for s in range(40)]

    def test_exceptions_propagate(self):
        def boom(seed):
            raise ValueError(f"seed {seed}")

        with pytest.raises(ValueError):
            map_seeds(boom, [1, 2], processes=1)

    @pytest.mark.skipif(os.cpu_count() in (None, 1),
                        reason="needs more than one CPU to be meaningful")
    def test_parallel_equals_serial_on_real_experiment(self):
        seeds = [0, 1]
        serial = map_seeds(table_ratio, seeds, processes=1)
        parallel = map_seeds(table_ratio, seeds, processes=2)
        assert serial == parallel
