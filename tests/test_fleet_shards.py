"""Shard manager tests: placement, escalation, atomicity, recovery.

The fleet's contract is that sharding is *invisible* in every verdict:
placement by channel-connected components plus escalation-by-migration
must produce responses byte-identical to one engine holding the whole
tenant (the fuzzed proof lives in ``test_fleet_equivalence.py``; here
are the targeted edges).
"""

import json

import pytest

from repro.errors import ReproError
from repro.fleet.regions import ChannelIndex, entry_channels
from repro.fleet.shards import Fleet, TenantFleet, TenantSpec
from repro.service.host import EngineHost
from repro.topology.route_table import shared_route_table

TOPO = {"type": "mesh", "width": 6, "height": 6}


def spec(src, dst, *, priority=5, period=300, length=4, deadline=300,
         **extra):
    out = {"src": src, "dst": dst, "priority": priority, "period": period,
           "length": length, "deadline": deadline}
    out.update(extra)
    return out


def admit(fleet, *streams, rid=None, **kw):
    request = {"op": "admit", "streams": list(streams), **kw}
    if rid is not None:
        request["rid"] = rid
    return fleet.handle_request(request)


# ---------------------------------------------------------------------- #
# ChannelIndex
# ---------------------------------------------------------------------- #


class TestChannelIndex:
    def test_components_split_and_merge(self):
        tf = TenantFleet("t", TOPO, shards=1)
        table = shared_route_table(tf.routing)
        a = entry_channels(table, tf.topology, 0, 2)       # links 0-1, 1-2
        b = entry_channels(table, tf.topology, 3, 5)       # links 3-4, 4-5
        bridge = entry_channels(table, tf.topology, 1, 4)  # 1-2, 2-3, 3-4

        idx = ChannelIndex()
        idx.add(1, a)
        idx.add(2, b)
        assert idx.component(a) == {1}
        assert idx.component(b) == {2}
        assert sorted(map(sorted, idx.components())) == [[1], [2]]

        # The bridge stream's channel set touches both -> one component.
        assert idx.component(bridge) == {1, 2}
        idx.add(3, bridge)
        assert sorted(map(sorted, idx.components())) == [[1, 2, 3]]

        # Removing the bridge splits the component again.
        idx.remove(3)
        assert sorted(map(sorted, idx.components())) == [[1], [2]]

    def test_touching_is_direct_only(self):
        tf = TenantFleet("t", TOPO, shards=1)
        table = shared_route_table(tf.routing)
        idx = ChannelIndex()
        # A chain: 1 and 2 share link 1-2, 2 and 3 share link 2-3.
        idx.add(1, entry_channels(table, tf.topology, 0, 2))
        idx.add(2, entry_channels(table, tf.topology, 1, 3))
        idx.add(3, entry_channels(table, tf.topology, 2, 4))
        probe = entry_channels(table, tf.topology, 0, 1)
        # Direct sharing reaches only stream 1; the component closure
        # walks the chain 1-2-3.
        assert idx.touching(probe) == {1}
        assert idx.component(probe) == {1, 2, 3}


# ---------------------------------------------------------------------- #
# Placement + escalation
# ---------------------------------------------------------------------- #


class TestPlacement:
    def test_disjoint_streams_spread_over_shards(self):
        tf = TenantFleet("t", TOPO, shards=2)
        admit(tf, spec(0, 2))    # row 0
        admit(tf, spec(30, 32))  # row 5
        shards = {tf.owner[sid] for sid in tf.owner}
        assert shards == {0, 1}
        assert tf.escalations == 0

    def test_bridge_stream_escalates_and_migrates(self):
        """A stream bridging two regions forces them onto one shard."""
        tf = TenantFleet("t", TOPO, shards=2)
        r1 = admit(tf, spec(0, 2))
        r2 = admit(tf, spec(3, 5))
        assert tf.owner[r1["ids"][0]] != tf.owner[r2["ids"][0]]

        r3 = admit(tf, spec(1, 4))  # shares links with both regions
        assert r3["ok"], r3
        owners = {tf.owner[sid] for sid in tf.owner}
        assert len(owners) == 1, "bridged component must live on one shard"
        assert tf.escalations == 1
        assert tf.migrated_streams >= 1
        # The moved stream is gone from its source engine.
        for i, host in enumerate(tf.hosts):
            expected = [s for s, o in tf.owner.items() if o == i]
            assert list(host.engine.admitted.ids()) == sorted(expected)

    def test_bridge_mid_churn_matches_single_engine(self):
        """Escalation under interleaved admits/releases stays
        bit-identical to the unsharded reference."""
        tf = TenantFleet("t", TOPO, shards=2)
        ref = EngineHost(TOPO)

        def step(request):
            got = tf.handle_request(dict(request))
            want = ref.handle_request(dict(request))
            assert got == want, request
            return got

        step({"op": "admit", "streams": [spec(0, 2)]})          # id 0
        step({"op": "admit", "streams": [spec(3, 5)]})          # id 1
        assert tf.owner[0] != tf.owner[1]
        # Churn: a third region comes and goes while the first two live.
        step({"op": "admit", "streams": [spec(30, 32)]})        # id 2
        step({"op": "release", "ids": [2]})
        # The bridge lands mid-churn and stitches regions 0 and 1.
        step({"op": "admit", "streams": [spec(1, 4, priority=7)]})  # id 3
        assert tf.escalations == 1
        assert len({tf.owner[sid] for sid in (0, 1, 3)}) == 1
        step({"op": "admit", "streams": [spec(24, 26)]})        # id 4
        step({"op": "release", "ids": [1]})
        step({"op": "report"})
        assert tf.fingerprint() == ref.fingerprint()

    def test_verdicts_identical_to_single_engine(self):
        tf = TenantFleet("t", TOPO, shards=4)
        ref = EngineHost(TOPO)
        batches = [
            [spec(0, 2, priority=2), spec(1, 2, priority=9)],
            [spec(30, 32, priority=4)],
            [spec(18, 20, priority=6), spec(19, 20, priority=1)],
        ]
        for batch in batches:
            got = admit(tf, *batch)
            want = ref.handle_request(
                {"op": "admit", "streams": list(batch)}
            )
            assert got == want
        assert tf.fingerprint() == ref.fingerprint()


# ---------------------------------------------------------------------- #
# Tenant-level ids mirror the engine exactly
# ---------------------------------------------------------------------- #


class TestIds:
    def test_fresh_ids_are_sequential_across_shards(self):
        tf = TenantFleet("t", TOPO, shards=2)
        ids = []
        for src, dst in ((0, 2), (30, 32), (12, 14)):
            ids.extend(admit(tf, spec(src, dst))["ids"])
        assert ids == [0, 1, 2]

    def test_explicit_id_advances_high_water_mark(self):
        tf = TenantFleet("t", TOPO, shards=2)
        ref = EngineHost(TOPO)
        for request in (
            {"op": "admit", "streams": [spec(0, 2, id=7)]},
            {"op": "admit", "streams": [spec(30, 32)]},  # gets 8
        ):
            assert (tf.handle_request(dict(request))
                    == ref.handle_request(dict(request)))
        assert sorted(tf.owner) == [7, 8]

    def test_duplicate_ids_rejected_like_engine(self):
        tf = TenantFleet("t", TOPO, shards=2)
        ref = EngineHost(TOPO)
        admit(tf, spec(0, 2, id=3))
        ref.handle_request({"op": "admit", "streams": [spec(0, 2, id=3)]})
        request = {"op": "admit", "streams": [spec(30, 32, id=3)]}
        got = tf.handle_request(dict(request))
        want = ref.handle_request(dict(request))
        assert got == want
        assert not got["ok"]
        # The failed admit must not leak the advanced next_id.
        after = {"op": "admit", "streams": [spec(12, 14)]}
        assert (tf.handle_request(dict(after))
                == ref.handle_request(dict(after)))

    def test_rejected_admit_restores_next_id(self):
        tf = TenantFleet("t", TOPO, shards=2)
        ref = EngineHost(TOPO)
        tight = spec(0, 2, priority=1, period=5, length=8, deadline=5)
        for request in (
            {"op": "admit", "streams": [spec(0, 2)]},
            {"op": "admit", "streams": [tight]},          # rejected
            {"op": "admit", "streams": [spec(30, 32)]},   # reuses the id
        ):
            got = tf.handle_request(dict(request))
            want = ref.handle_request(dict(request))
            assert got == want
        assert sorted(tf.owner) == [0, 1]


# ---------------------------------------------------------------------- #
# Cross-shard release atomicity
# ---------------------------------------------------------------------- #


class TestCrossShardRelease:
    def _two_shard_release(self, tmp_path=None):
        tf = TenantFleet(
            "t", TOPO, shards=2,
            state_dir=None if tmp_path is None else tmp_path,
        )
        a = admit(tf, spec(0, 2))["ids"][0]
        b = admit(tf, spec(30, 32))["ids"][0]
        assert tf.owner[a] != tf.owner[b]
        return tf, a, b

    def test_release_spanning_shards(self):
        tf, a, b = self._two_shard_release()
        response = tf.handle_request({"op": "release", "ids": [a, b]})
        assert response["ok"] and sorted(response["released"]) == [a, b]
        assert not tf.owner and len(tf.index) == 0

    def test_rollback_restores_both_shards(self, tmp_path):
        """Journal failure on the *second* shard: the first shard's
        already-committed release must be compensated, leaving the
        fleet's state (and fingerprint) exactly as before the op."""
        tf, a, b = self._two_shard_release(tmp_path)
        before = tf.fingerprint()
        second = tf.hosts[max(tf.owner[a], tf.owner[b])]

        # One-shot injected journal failure on the higher shard only
        # (releases iterate shards ascending, so the lower one commits
        # first and must be rolled back).
        real_append = second.state.append

        def failing_append(op):
            second.state.append = real_append
            raise OSError(28, "injected: no space left on device")

        second.state.append = failing_append
        response = tf.handle_request(
            {"op": "release", "rid": "r-roll", "ids": [a, b]}
        )
        assert not response["ok"]
        assert response["code"] == "degraded"

        # Nothing released anywhere; bounds and closures unchanged.
        assert sorted(tf.owner) == sorted([a, b])
        assert tf.fingerprint() == before
        for sid in (a, b):
            host = tf.hosts[tf.owner[sid]]
            assert sid in host.engine.admitted

        # Clear degraded mode, then the *same rid* retry releases both
        # (the rollback must have dropped the partial rid record).
        snap = tf.handle_request({"op": "snapshot"})
        assert snap["ok"], snap
        retry = tf.handle_request(
            {"op": "release", "rid": "r-roll", "ids": [a, b]}
        )
        assert retry["ok"] and not retry.get("duplicate")
        assert not tf.owner

        # And the rolled-back state survives a disk recovery.
        recovered = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert recovered.fingerprint() == tf.fingerprint()
        recovered.close()
        tf.close()

    def test_release_unknown_id_matches_engine_message(self):
        tf, a, b = self._two_shard_release()
        ref = EngineHost(TOPO)
        got = tf.handle_request({"op": "release", "ids": [a, 99]})
        want = ref.handle_request({"op": "release", "ids": [99]})
        assert not got["ok"] and not want["ok"]
        assert got["error"] == "cannot release stream id(s) [99]: not admitted"
        assert got["code"] == want["code"] == "stream"
        # Atomic: the known id was not released either.
        assert a in tf.owner


# ---------------------------------------------------------------------- #
# Fleet recovery
# ---------------------------------------------------------------------- #


class TestRecovery:
    def test_recovery_is_bit_identical(self, tmp_path):
        tf = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        admit(tf, spec(0, 2))
        admit(tf, spec(3, 5))
        admit(tf, spec(1, 4))  # escalation -> migration journaled
        tf.handle_request({"op": "release", "ids": [0]})
        sha, _ = tf.fingerprint()
        owner = dict(tf.owner)
        tf.close()

        recovered = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert recovered.fingerprint()[0] == sha
        assert recovered.owner == owner
        recovered.close()

    def test_recovery_repairs_spanning_component(self, tmp_path):
        """Streams that share channels but recovered onto different
        shards (e.g. a migration torn by a crash) are re-merged."""
        tf = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        admit(tf, spec(0, 2))
        admit(tf, spec(3, 5))
        # Forge the torn state: admit the bridge directly on whichever
        # shard does NOT hold stream 0, bypassing fleet placement.
        target = 1 - tf.owner[0]
        tf.hosts[target].handle_request(
            {"op": "admit", "streams": [spec(1, 4, id=5)]}
        )
        tf.close()

        recovered = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert sorted(recovered.owner) == [0, 1, 5]
        owners = {recovered.owner[sid] for sid in (0, 1, 5)}
        assert len(owners) == 1, "connected component must be re-merged"
        # The merged state equals one engine holding all three.
        ref = EngineHost(TOPO)
        ref.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        ref.handle_request({"op": "admit", "streams": [spec(3, 5)]})
        ref.handle_request({"op": "admit", "streams": [spec(1, 4, id=5)]})
        assert recovered.fingerprint() == ref.fingerprint()
        recovered.close()

    def test_recovery_dedupes_doubled_stream(self, tmp_path):
        """A crash between migration admit and source release leaves the
        stream on two shards; recovery keeps one copy."""
        tf = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        admit(tf, spec(0, 2))
        # Duplicate stream 0 onto the other shard, as a torn migration
        # (admit-then-release, crashed before the release) would.
        other = 1 - tf.owner[0]
        tf.hosts[other].handle_request(
            {"op": "admit", "streams": [spec(0, 2, id=0)]}
        )
        tf.close()

        recovered = TenantFleet("t", TOPO, shards=2, state_dir=tmp_path)
        assert sorted(recovered.owner) == [0]
        copies = sum(
            1 for host in recovered.hosts if 0 in host.engine.admitted
        )
        assert copies == 1
        ref = EngineHost(TOPO)
        ref.handle_request({"op": "admit", "streams": [spec(0, 2)]})
        assert recovered.fingerprint() == ref.fingerprint()
        recovered.close()


# ---------------------------------------------------------------------- #
# Kill / failover gating
# ---------------------------------------------------------------------- #


class TestDeadShards:
    def test_ops_on_dead_shard_fail_clearly(self):
        tf = TenantFleet("t", TOPO, shards=2)
        a = admit(tf, spec(0, 2))["ids"][0]
        tf.kill_host(tf.owner[a])
        response = tf.handle_request({"op": "release", "ids": [a]})
        assert not response["ok"]
        assert "down" in response["error"]
        q = tf.handle_request({"op": "query", "stream": a})
        assert not q["ok"] and "down" in q["error"]
        rep = tf.handle_request({"op": "report"})
        assert not rep["ok"] and "down" in rep["error"]

    def test_other_shards_keep_serving(self):
        tf = TenantFleet("t", TOPO, shards=2)
        a = admit(tf, spec(0, 2))["ids"][0]
        b = admit(tf, spec(30, 32))["ids"][0]
        tf.kill_host(tf.owner[a])
        q = tf.handle_request({"op": "query", "stream": b})
        assert q["ok"]

    def test_replace_host_revives_shard(self):
        tf = TenantFleet("t", TOPO, shards=2)
        a = admit(tf, spec(0, 2))["ids"][0]
        shard = tf.owner[a]
        old = tf.hosts[shard]
        tf.kill_host(shard)
        tf.replace_host(shard, old)  # stand-in for a promoted standby
        assert tf.handle_request({"op": "query", "stream": a})["ok"]
        assert not tf.dead

    def test_kill_bounds_checked(self):
        tf = TenantFleet("t", TOPO, shards=2)
        with pytest.raises(ReproError):
            tf.kill_host(5)


# ---------------------------------------------------------------------- #
# Fleet (multi-tenant shell)
# ---------------------------------------------------------------------- #


class TestFleet:
    def _fleet(self, **kw):
        return Fleet(
            [TenantSpec("acme", "k1", TOPO),
             TenantSpec("beta", "k2", TOPO)],
            shards=2, **kw,
        )

    def test_tenants_are_isolated(self):
        fleet = self._fleet()
        r1 = fleet.handle_request(
            "acme", {"op": "admit", "streams": [spec(0, 2)]}
        )
        r2 = fleet.handle_request(
            "beta", {"op": "admit", "streams": [spec(0, 2)]}
        )
        # Identical specs, identical ids: separate id spaces, separate
        # engines, no interference between the bounds.
        assert r1["ids"] == r2["ids"] == [0]
        assert fleet.handle_request("beta", {"op": "query", "stream": 0})["ok"]
        fleet.handle_request("beta", {"op": "release", "ids": [0]})
        assert fleet.handle_request(
            "acme", {"op": "query", "stream": 0}
        )["ok"], "acme's stream must survive beta's release"

    def test_unknown_tenant_is_auth_error(self):
        fleet = self._fleet()
        response = fleet.handle_request("nope", {"op": "hello"})
        assert not response["ok"] and response["code"] == "auth"

    def test_key_routing(self):
        fleet = self._fleet()
        assert fleet.tenant_for_key("k1") == "acme"
        assert fleet.tenant_for_key("k2") == "beta"
        assert fleet.tenant_for_key("wrong") is None
        assert fleet.tenant_for_key(None) is None

    def test_duplicate_names_or_keys_rejected(self):
        with pytest.raises(ReproError):
            Fleet([TenantSpec("a", "k1", TOPO), TenantSpec("a", "k2", TOPO)])
        with pytest.raises(ReproError):
            Fleet([TenantSpec("a", "k", TOPO), TenantSpec("b", "k", TOPO)])

    def test_prometheus_rollup(self):
        fleet = self._fleet()
        fleet.handle_request(
            "acme", {"op": "admit", "streams": [spec(0, 2)]}
        )
        text = fleet.prometheus_text()
        assert 'repro_fleet_tenant_streams{tenant="acme"} 1' in text
        assert 'repro_fleet_tenant_streams{tenant="beta"} 0' in text
        assert "repro_fleet_shard_streams" in text
        assert 'op="admit"' in text

    def test_hello_names_tenant(self):
        fleet = self._fleet()
        hello = fleet.handle_request("acme", {"op": "hello"})
        assert hello["server"] == "repro-fleet"
        assert hello["tenant"] == "acme"
        assert hello["shards"] == 2

    def test_fingerprint_spec_shape_matches_host(self):
        """The tenant fingerprint is byte-compatible with EngineHost's —
        that equality is what every oracle comparison rests on."""
        tf = TenantFleet("t", TOPO, shards=2)
        ref = EngineHost(TOPO)
        for target in (tf, ref):
            target.handle_request(
                {"op": "admit", "streams": [spec(0, 2)]}
            )
        sha_f, spec_f = tf.fingerprint()
        sha_r, spec_r = ref.fingerprint()
        assert sha_f == sha_r
        assert json.dumps(spec_f, sort_keys=True) == json.dumps(
            spec_r, sort_keys=True
        )
