"""Chaos composition: link kills interleaved with crash/torn-write chaos.

The link layer rides the same seeded campaign machinery as the other
three fault layers, so a single schedule can kill a topology link, tear
the journal write that records it, crash the broker mid-reroute, and
still demand the two global invariants: recovery is bit-identical to the
fault-free oracle (which includes the failed-link set) and nothing
acknowledged is ever lost.
"""

import random

import pytest

from repro.faults.campaign import (
    ChaosConfig,
    LinkState,
    ScheduledOp,
    build_request,
    generate_schedule,
    run_chaos_campaign,
)
from repro.service.loadgen import churn_spec

#: Small but hot: every layer (including link) fires at this size.
LINKY = ChaosConfig(
    seed=11,
    ops=60,
    width=5,
    height=5,
    target_live=8,
    persistence_rate=0.5,
    protocol_rate=0.7,
    engine_rate=0.3,
    restart_rate=0.12,
    socket_fraction=0.3,
    link_rate=0.15,
)


class TestLinkChaosComposition:
    def test_four_layer_campaign_holds_invariants(self, tmp_path):
        report = run_chaos_campaign(LINKY, state_dir=tmp_path / "state")
        assert report.ok, report.summary()
        assert report.bit_identical
        assert report.acked_then_lost == []
        assert report.phantom_ids == []
        assert report.outcome_mismatches == 0
        link_faults = report.faults_by_layer["link"]
        assert link_faults.get("link_fail", 0) > 0
        assert report.layers_covered == 4
        # The oracle executed the same link events, so bit-identity of
        # the fingerprints *is* the failed-link set surviving recovery.
        assert report.recovered_sha == report.oracle_sha

    def test_campaign_is_reproducible(self):
        small = ChaosConfig(seed=6, ops=30, width=4, height=4,
                            socket_fraction=0.0, link_rate=0.2)
        first = run_chaos_campaign(small).to_dict()
        second = run_chaos_campaign(small).to_dict()
        first.pop("seconds"), second.pop("seconds")
        assert first == second
        assert first["faults"]["by_layer"]["link"]

    def test_zero_link_rate_schedule_is_unchanged(self):
        """link_rate=0 consumes no extra randomness: schedules match the
        pre-link formula draw for draw."""
        cfg = ChaosConfig(seed=9, ops=15)
        schedule = generate_schedule(cfg)
        rng = random.Random(cfg.seed)
        for i, entry in enumerate(schedule):
            assert not entry.link_op
            assert entry.bias == rng.random()
            assert entry.pick == rng.random()
            assert entry.spec == churn_spec(
                rng, cfg.nodes, priority_levels=cfg.priority_levels
            )
            assert entry.rid == f"c{cfg.seed}-{i}"

    def test_link_slots_present_when_rate_is_high(self):
        cfg = ChaosConfig(seed=1, ops=40, link_rate=0.5)
        schedule = generate_schedule(cfg)
        assert any(entry.link_op for entry in schedule)
        assert any(not entry.link_op for entry in schedule)


class TestLinkSlotResolution:
    """build_request resolves link slots against the live link state."""

    @staticmethod
    def _slot(bias, pick):
        return ScheduledOp(index=0, rid="r", bias=bias, pick=pick,
                           spec={}, link_op=True)

    def test_fails_first_then_restores_at_three_down(self):
        links = LinkState([(0, 1), (1, 2), (2, 3), (3, 4)])
        live = []
        seen = []
        for _ in range(3):
            # bias < 0.5 is the "fail" side of the coin.
            request = build_request(
                self._slot(0.2, 0.0), live, target_live=5, links=links
            )
            seen.append(request["op"])
            links.apply(request["op"], tuple(request["link"]))
        assert seen == ["fail_link", "fail_link", "fail_link"]
        # Three down -> the next slot must restore regardless of bias.
        request = build_request(
            self._slot(0.2, 0.0), live, target_live=5, links=links
        )
        assert request["op"] == "restore_link"
        assert tuple(request["link"]) in {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_without_link_state_slot_degrades_to_churn(self):
        spec = {"src": 0, "dst": 1, "priority": 1, "period": 100,
                "length": 2, "deadline": 100}
        entry = ScheduledOp(index=0, rid="r", bias=0.1, pick=0.0,
                            spec=spec, link_op=True)
        request = build_request(entry, [], target_live=5, links=None)
        assert request["op"] == "admit"

    def test_resolution_is_deterministic(self):
        pool = [(0, 1), (1, 2), (2, 3)]
        for bias, pick in [(0.2, 0.7), (0.9, 0.1), (0.49, 0.99)]:
            a_links, b_links = LinkState(pool), LinkState(pool)
            a = build_request(self._slot(bias, pick), [], target_live=5,
                              links=a_links)
            b = build_request(self._slot(bias, pick), [], target_live=5,
                              links=b_links)
            assert a == b


@pytest.mark.chaos
class TestFullSizeLinkCampaign:
    def test_default_size_with_links(self, tmp_path):
        cfg = ChaosConfig(seed=2, link_rate=0.08)
        report = run_chaos_campaign(cfg, state_dir=tmp_path / "state")
        assert report.ok, report.summary()
        assert report.layers_covered == 4
