"""Deadlock machinery end to end: an unsafe routing function must be
flagged by the dependency-cycle checker, and actually deadlock in the
simulator (caught by the watchdog) — while the paper's X-Y setup never
does.
"""

import pytest

from repro.core.streams import MessageStream, StreamSet
from repro.errors import DeadlockError
from repro.sim import WormholeSimulator
from repro.topology import Mesh2D, is_deadlock_free
from repro.topology.routing import RoutingAlgorithm


class FixedTableRouting(RoutingAlgorithm):
    """Test-only routing from an explicit route table (falls back to a
    shortest path for pairs the table omits)."""

    def __init__(self, topology, table):
        super().__init__(topology)
        self._table = dict(table)

    def _compute_route(self, src, dst):
        if (src, dst) in self._table:
            return tuple(self._table[(src, dst)])
        # Fallback: simple BFS shortest path.
        from collections import deque

        prev = {src: None}
        q = deque([src])
        while q:
            u = q.popleft()
            if u == dst:
                break
            for v in self.topology.neighbors(u):
                if v not in prev:
                    prev[v] = u
                    q.append(v)
        path = [dst]
        while prev[path[-1]] is not None:
            path.append(prev[path[-1]])
        return tuple(reversed(path))


@pytest.fixture()
def ring_setup():
    """The canonical wormhole deadlock: four messages turning around the
    four channels of an inner ring A->B->C->D->A on a 4x4 mesh, each
    holding one ring channel and waiting for the next (held by the next
    message), with the final hop exiting the ring. Simultaneous release +
    single VCs + single-flit buffers wedge the ring.

    A=(1,1), B=(2,1), C=(2,2), D=(1,2)."""
    mesh = Mesh2D(4, 4)
    A, B = mesh.node_xy(1, 1), mesh.node_xy(2, 1)
    C, D = mesh.node_xy(2, 2), mesh.node_xy(1, 2)
    exits = {
        "m1": mesh.node_xy(2, 0),
        "m2": mesh.node_xy(3, 2),
        "m3": mesh.node_xy(0, 2),
        "m4": mesh.node_xy(1, 0),
    }
    table = {
        (D, exits["m1"]): (D, A, B, exits["m1"]),
        (A, exits["m2"]): (A, B, C, exits["m2"]),
        (B, exits["m3"]): (B, C, D, exits["m3"]),
        (C, exits["m4"]): (C, D, A, exits["m4"]),
    }
    routing = FixedTableRouting(mesh, table)
    streams = StreamSet([
        MessageStream(0, D, exits["m1"], priority=1, period=5_000,
                      length=4, deadline=5_000),
        MessageStream(1, A, exits["m2"], priority=1, period=5_000,
                      length=4, deadline=5_000),
        MessageStream(2, B, exits["m3"], priority=1, period=5_000,
                      length=4, deadline=5_000),
        MessageStream(3, C, exits["m4"], priority=1, period=5_000,
                      length=4, deadline=5_000),
    ])
    return mesh, routing, streams


class TestDeadlock:
    def test_checker_flags_the_cycle(self, ring_setup):
        mesh, routing, streams = ring_setup
        assert not is_deadlock_free(routing)

    def test_simulator_watchdog_catches_it(self, ring_setup):
        """With single-flit buffers and one VC, the four worms wedge: each
        holds the channel the next one needs. The watchdog must raise
        rather than spin forever."""
        mesh, routing, streams = ring_setup
        sim = WormholeSimulator(
            mesh, routing, streams,
            vc_mode="single", vc_capacity=1, watchdog_cycles=500,
        )
        with pytest.raises(DeadlockError):
            sim.simulate_streams(5_000)

    def test_staggered_release_avoids_the_wedge(self, ring_setup):
        """The same configuration completes when releases are staggered so
        the ring never fills — deadlock needs the simultaneous pattern."""
        mesh, routing, streams = ring_setup
        sim = WormholeSimulator(
            mesh, routing, streams,
            vc_mode="single", vc_capacity=1, watchdog_cycles=500,
        )
        stats = sim.simulate_streams(
            200, phases={0: 0, 1: 30, 2: 60, 3: 90}
        )
        assert stats.unfinished == 0

    def test_paper_setup_never_wedges(self, ring_setup):
        """Same traffic, same buffers, but X-Y routing (legal turns only):
        no deadlock regardless of the release pattern."""
        from repro.topology import XYRouting

        mesh, _, streams = ring_setup
        routing = XYRouting(mesh)
        assert is_deadlock_free(routing)
        sim = WormholeSimulator(
            mesh, routing, streams,
            vc_mode="single", vc_capacity=1, watchdog_cycles=500,
        )
        stats = sim.simulate_streams(200)
        assert stats.unfinished == 0
