"""Unit tests for sensitivity sweeps (repro.analysis.sensitivity)."""

import pytest

from repro.analysis.sensitivity import (
    SweepPoint,
    format_sweep,
    sweep_mesh_size,
    sweep_num_streams,
)
from repro.errors import AnalysisError


class TestSweeps:
    def test_num_streams_single_point(self):
        points = sweep_num_streams((8,), seeds=(0,), sim_time=3_000)
        assert len(points) == 1
        p = points[0]
        assert p.x == 8
        assert 0.0 <= p.mean_ratio <= 1.0
        assert 0.0 <= p.top_ratio <= 1.0
        assert p.mean_hp_size >= 0.0
        assert p.seeds == 1

    def test_mesh_size_point_uses_width(self):
        points = sweep_mesh_size((6,), seeds=(0,), sim_time=3_000)
        assert points[0].x == 6

    def test_levels_follow_rule(self):
        # 12 streams -> 3 levels; with one seed the point must still run.
        points = sweep_num_streams((12,), seeds=(0,), sim_time=3_000)
        assert points[0].label == "num_streams"


class TestFormatting:
    def test_format_alignment(self):
        points = [
            SweepPoint(x=10, label="t", mean_ratio=0.5, top_ratio=0.9,
                       mean_hp_size=1.25, inflated_share=0.1, seeds=2),
            SweepPoint(x=20, label="t", mean_ratio=0.4, top_ratio=0.8,
                       mean_hp_size=2.0, inflated_share=0.0, seeds=2),
        ]
        out = format_sweep("demo", points)
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "mean ratio" in lines[1]
        assert len(lines) == 4
        assert "0.500" in lines[2] and "10.0%" in lines[2]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            format_sweep("demo", [])
