"""Tests for delay-bound provenance (repro.obs.provenance, repro explain).

The accounting identity pinned here is exact by construction: row
allocations are disjoint, so the per-HP-element busy slots in
``[1, U]`` partition the result row's busy slots, and their sum is the
interference ``U - L`` the bound charges on top of the no-load latency.
"""

import json
import pathlib

import pytest

from conftest import PAPER_EXAMPLE_U
from repro.cli import main
from repro.core.feasibility import FeasibilityAnalyzer
from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.io import report_to_spec
from repro.obs.provenance import (
    StreamExplanation,
    explain_report,
    explain_stream,
    render_explanation,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
PAPER_PROBLEM = GOLDEN_DIR / "paper_problem.json"

#: Bounds of the section 4.4 example under *computed* HP sets (problem
#: files cannot carry the paper's printed HP override, whose M3/M4 sets
#: differ — see tests/conftest.py).
COMPUTED_U = {0: 7, 1: 8, 2: 26, 3: 30, 4: 37}


@pytest.fixture()
def paper_analyzer(paper_streams, xy10):
    return FeasibilityAnalyzer(paper_streams, xy10)


class TestAccountingIdentity:
    def test_slots_sum_to_interference_on_paper_example(self, paper_analyzer):
        for sid, exp in explain_report(paper_analyzer).items():
            assert exp.upper_bound == COMPUTED_U[sid]
            assert sum(c.busy_slots for c in exp.contributions) == \
                exp.interference
            assert exp.interference == exp.upper_bound - exp.latency

    def test_identity_with_paper_hp_override(
        self, paper_streams, xy10, paper_hp_override
    ):
        an = FeasibilityAnalyzer(
            paper_streams, xy10, hp_override=paper_hp_override
        )
        for sid, exp in explain_report(an).items():
            assert exp.upper_bound == PAPER_EXAMPLE_U[sid]
            assert sum(c.busy_slots for c in exp.contributions) == \
                exp.interference == exp.upper_bound - exp.latency

    @pytest.mark.parametrize("seed", range(8))
    def test_identity_on_fuzzed_problems(self, seed):
        case = generate_case(seed, GeneratorConfig(max_streams=6))
        _, routing, streams = case.build()
        an = FeasibilityAnalyzer(
            streams, routing, residency_margin=case.residency_margin
        )
        for exp in explain_report(an).values():
            assert sum(c.busy_slots for c in exp.contributions) == \
                exp.interference
            if exp.upper_bound > 0:
                assert exp.interference == exp.upper_bound - exp.latency


class TestExplanationContent:
    def test_m4_breakdown(self, paper_analyzer):
        exp = explain_stream(paper_analyzer, 4)
        by_id = {c.stream_id: c for c in exp.contributions}
        assert set(by_id) == {0, 1, 2, 3}
        assert by_id[2].mode == "DIRECT" and by_id[3].mode == "DIRECT"
        assert by_id[0].mode == "INDIRECT"
        assert by_id[0].intermediates == (2, 3)
        # Modify_Diagram releases one instance each of M0 and M1.
        released = {(r.stream_id, r.index) for r in exp.released}
        assert released == {(0, 2), (1, 3)}
        assert by_id[0].removed_instances == 1
        assert by_id[1].removed_instances == 1
        assert exp.dominant() is by_id[3]

    def test_highest_priority_stream_has_no_interference(
        self, paper_analyzer
    ):
        exp = explain_stream(paper_analyzer, 0)
        assert exp.contributions == ()
        assert exp.interference == 0
        assert exp.upper_bound == exp.latency == 7
        assert exp.busy_timeline == ()

    def test_to_spec_round_trips_json(self, paper_analyzer):
        exp = explain_stream(paper_analyzer, 4)
        spec = json.loads(json.dumps(exp.to_spec()))
        assert spec["upper_bound"] == 37
        assert spec["interference"] == 27
        assert sum(c["busy_slots"] for c in spec["contributions"]) == 27
        assert spec["contributions"][0]["intervals"] == [[13, 15], [20, 20],
                                                         [23, 27]]

    def test_report_explanations_via_determine_feasibility(
        self, paper_analyzer
    ):
        report = paper_analyzer.determine_feasibility(explain=True)
        assert report.explanations is not None
        assert set(report.explanations) == set(range(5))
        assert all(isinstance(e, StreamExplanation)
                   for e in report.explanations.values())
        spec = report_to_spec(report)
        assert set(spec["explanations"]) == {str(i) for i in range(5)}
        # Explanations agree with the verdicts they annotate.
        for sid, verdict in report.verdicts.items():
            assert report.explanations[sid].upper_bound == \
                verdict.upper_bound

    def test_plain_report_has_no_explanations(self, paper_analyzer):
        report = paper_analyzer.determine_feasibility()
        assert report.explanations is None
        assert "explanations" not in report_to_spec(report)

    def test_render_without_analyzer_skips_diagram(self, paper_analyzer):
        exp = explain_stream(paper_analyzer, 4)
        text = render_explanation(exp)
        assert "timing diagram" not in text
        assert "M4: U = 37 = L (10) + interference (27)" in text


class TestExplainCli:
    def test_golden_m4(self, capsys):
        assert main(["explain", str(PAPER_PROBLEM), "4"]) == 0
        out = capsys.readouterr().out
        assert out == (GOLDEN_DIR / "explain_m4.txt").read_text()

    def test_json_output(self, capsys):
        assert main(["explain", str(PAPER_PROBLEM), "4", "--json"]) == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["upper_bound"] == 37 and spec["feasible"] is True
        assert sum(c["busy_slots"] for c in spec["contributions"]) == \
            spec["interference"]

    def test_no_diagram_flag(self, capsys):
        assert main(["explain", str(PAPER_PROBLEM), "4",
                     "--no-diagram"]) == 0
        assert "timing diagram" not in capsys.readouterr().out

    def test_infeasible_stream_exit_one(self, tmp_path, capsys):
        spec = {
            "topology": {"type": "mesh", "width": 10, "height": 10},
            "streams": [
                {"id": 0, "src": [0, 0], "dst": [5, 0], "priority": 2,
                 "period": 100, "length": 10, "deadline": 50},
                {"id": 1, "src": [1, 0], "dst": [6, 0], "priority": 1,
                 "period": 20, "length": 18, "deadline": 4},
            ],
        }
        path = tmp_path / "infeasible.json"
        path.write_text(json.dumps(spec))
        assert main(["explain", str(path), "1"]) == 1
        out = capsys.readouterr().out
        assert "infeasible" in out or "bound exceeds horizon" in out

    def test_unknown_stream_exit_two(self, capsys):
        assert main(["explain", str(PAPER_PROBLEM), "9"]) == 2
        assert "no stream 9" in capsys.readouterr().err

    def test_missing_file_exit_four(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope.json"), "0"]) == 4

    def test_malformed_json_exit_three(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["explain", str(path), "0"]) == 3
