"""Fuzzed proof that sharding + failover are invisible in every verdict.

The fleet's whole claim (finding F-7: a stream's bound depends only on
its transitive HP closure over shared channels) is that partitioning a
tenant by channel-connected components changes *nothing observable*.
This test runs a seeded random campaign — admits, releases, queries,
reports, deliberate protocol errors — against a 4-shard fleet and an
unsharded single-engine reference simultaneously, asserting every
response is equal **as a whole dict** (verdicts, bounds, closures,
error strings) and the final SHA-256 fingerprints are identical.

Mid-campaign the fuzz also kills a primary that owns live streams and
fails over to its journal-shipped standby; equivalence must hold
straight through the promotion.
"""

import hashlib
import json
import random
import time

import pytest

from repro.faults.campaign import ScheduledOp, _apply_outcome, build_request
from repro.fleet.replication import StandbyPool
from repro.fleet.shards import Fleet, TenantSpec
from repro.service.host import EngineHost
from repro.service.loadgen import churn_spec

TOPO = {"type": "mesh", "width": 6, "height": 6}
NODES = 36
OPS = 220
TARGET_LIVE = 12


def run_equivalence(seed, tmp_path, *, shards=4, ops=OPS, kills=1):
    fleet = Fleet(
        [TenantSpec("t", "key", TOPO)], shards=shards, state_dir=tmp_path
    )
    pool = StandbyPool(fleet)
    tf = fleet.tenants["t"]
    ref = EngineHost(TOPO)
    rng = random.Random(seed)
    live = []
    kill_slots = set(rng.sample(range(ops // 3, ops - 10), kills))
    promotions = 0
    max_spread = 0  # most shards simultaneously holding streams

    for i in range(ops):
        entry = ScheduledOp(
            index=i,
            rid=f"eq{seed}-{i}",
            bias=rng.random(),
            pick=rng.random(),
            spec=churn_spec(rng, NODES, priority_levels=12),
        )
        request = build_request(entry, live, target_live=TARGET_LIVE)
        roll = rng.random()
        if roll < 0.08 and live:
            request = {
                "op": "query",
                "stream": live[int(rng.random() * len(live)) % len(live)],
            }
        elif roll < 0.12:
            request = {"op": "report"}
        elif roll < 0.15:
            # Deliberate error: both sides must reject identically.
            request = {"op": "release", "ids": [9999]}

        got = fleet.handle_request("t", dict(request))
        want = ref.handle_request(dict(request))
        assert got == want, (i, request, got, want)
        if request["op"] in ("admit", "release") and got.get("ok"):
            _apply_outcome(request, got, live, [])

        max_spread = max(
            max_spread, len(set(tf.owner.values())) if tf.owner else 0
        )
        if i % 9 == 0:
            pool.catch_up()
        if i in kill_slots and tf.owner:
            victim = tf.owner[live[int(rng.random() * len(live))]]
            tf.kill_host(victim)
            pool.promote("t", victim)
            promotions += 1
            # The promoted shard answers exactly like the reference.
            probe = next(s for s, o in tf.owner.items() if o == victim)
            request = {"op": "query", "stream": probe}
            assert (fleet.handle_request("t", dict(request))
                    == ref.handle_request(dict(request)))

    pool.catch_up()
    fleet_sha, fleet_spec = tf.fingerprint()
    ref_sha, ref_spec = ref.fingerprint()
    assert fleet_sha == ref_sha
    assert fleet_spec == ref_spec
    # Every warm standby converged to its primary too.
    for (tenant, shard), sb in pool.standbys.items():
        assert sb.fingerprint()[0] == tf.hosts[shard].fingerprint()[0]
    fleet.close()
    return {
        "ops": ops,
        "escalations": tf.escalations,
        "promotions": promotions,
        "max_spread": max_spread,
        "live": len(live),
    }


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fleet_bit_identical_under_fuzz(seed, tmp_path):
    stats = run_equivalence(seed, tmp_path)
    assert stats["ops"] >= 200
    assert stats["promotions"] >= 1, "campaign must exercise failover"
    # The run must actually have exercised the interesting machinery:
    # streams spread over >1 shard, and at least one cross-shard
    # escalation (a batch whose component spanned shards).
    assert stats["max_spread"] >= 2
    assert stats["escalations"] >= 1


def test_fleet_single_shard_degenerate(tmp_path):
    """shards=1 is the trivial partition; equivalence is exact there
    too (guards against the fleet layer itself perturbing requests)."""
    stats = run_equivalence(7, tmp_path, shards=1, ops=60, kills=1)
    assert stats["promotions"] == 1


# --------------------------------------------------------------------- #
# Three-way: multiprocess fleet ≡ in-process fleet ≡ single engine
# --------------------------------------------------------------------- #


def run_three_way(seed, tmp_path, *, ops=OPS, workers=2, worker_kills=2):
    """Drive identical fuzzed traffic into a worker-pool fleet, an
    in-process fleet, and an unsharded engine; every response must be
    equal as a whole dict, straight through real mid-run SIGKILLs of
    the worker processes (the retryable ``worker`` code is the one
    tolerated, and only on the multiprocess side)."""
    mp = Fleet(
        [TenantSpec("t", "key", TOPO)],
        shards=4, state_dir=tmp_path / "mp", workers=workers,
    )
    ip = Fleet(
        [TenantSpec("t", "key", TOPO)],
        shards=4, state_dir=tmp_path / "ip",
    )
    ref = EngineHost(TOPO)
    rng = random.Random(seed)
    live = []
    kill_slots = set(rng.sample(range(ops // 4, ops - 10), worker_kills))
    worker_retries = 0
    max_spread = 0
    tf_mp, tf_ip = mp.tenants["t"], ip.tenants["t"]

    try:
        for i in range(ops):
            entry = ScheduledOp(
                index=i,
                rid=f"tw{seed}-{i}",
                bias=rng.random(),
                pick=rng.random(),
                spec=churn_spec(rng, NODES, priority_levels=12),
            )
            request = build_request(entry, live, target_live=TARGET_LIVE)
            roll = rng.random()
            if roll < 0.08 and live:
                request = {
                    "op": "query",
                    "stream": live[int(rng.random() * len(live))
                                   % len(live)],
                }
            elif roll < 0.12:
                request = {"op": "report"}
            elif roll < 0.15:
                request = {"op": "release", "ids": [9999]}

            if i in kill_slots:
                # Real SIGKILL of a live worker mid-campaign; ensure
                # first so every kill lands on a running process.
                mp.supervisor.ensure_all()
                mp.supervisor.kill_worker(rng.randrange(workers))

            want = ref.handle_request(dict(request))
            got_ip = ip.handle_request("t", dict(request))
            got_mp = None
            for _ in range(64):
                got_mp = mp.handle_request("t", dict(request))
                if got_mp.get("code") == "worker":
                    worker_retries += 1
                    time.sleep(0.01)
                    continue
                break
            assert got_ip == want, (i, request, got_ip, want)
            assert got_mp == want, (i, request, got_mp, want)
            if request["op"] in ("admit", "release") and want.get("ok"):
                _apply_outcome(request, want, live, [])
            max_spread = max(
                max_spread,
                len(set(tf_mp.owner.values())) if tf_mp.owner else 0,
            )

        mp.supervisor.ensure_all()
        restarts = sum(wp.restarts for wp in mp.supervisor.workers)
        mp_sha, mp_spec = tf_mp.fingerprint()
        ip_sha, ip_spec = tf_ip.fingerprint()
        ref_sha, ref_spec = ref.fingerprint()
        assert mp_sha == ip_sha == ref_sha
        assert mp_spec == ip_spec == ref_spec
        # Belt and braces: hash the canonical spec ourselves so the
        # three-way identity does not lean on fingerprint() alone.
        digests = {
            hashlib.sha256(
                json.dumps(s, sort_keys=True).encode()
            ).hexdigest()
            for s in (mp_spec, ip_spec, ref_spec)
        }
        assert len(digests) == 1
    finally:
        mp.close()
        ip.close()

    return {
        "ops": ops,
        "worker_restarts": restarts,
        "worker_retries": worker_retries,
        "escalations": tf_mp.escalations,
        "max_spread": max_spread,
        "live": len(live),
    }


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_three_way_multiprocess_equivalence(seed, tmp_path):
    stats = run_three_way(seed, tmp_path)
    assert stats["ops"] >= 200
    # Every kill slot produced a real restart mid-run, and the
    # campaign exercised the cross-shard machinery on both fleets.
    assert stats["worker_restarts"] >= 2
    assert stats["max_spread"] >= 2
    assert stats["escalations"] >= 1
