"""Unit + property tests for the incremental admission engine.

The load-bearing property (ISSUE 3 acceptance): across a long fuzzed
admit/release trace, the incremental engine's decisions and reports are
**bit-identical** to full reanalysis — both to the engine's own full mode
(``REPRO_INCREMENTAL=0`` path) and to a from-scratch
:class:`FeasibilityAnalyzer` over the same admitted set.
"""

import random

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import build_all_hp_sets
from repro.core.streams import MessageStream, StreamSet
from repro.errors import AnalysisError, StreamError
from repro.io import report_to_spec
from repro.service.engine import (
    IncrementalAdmissionEngine,
    incremental_enabled_default,
)
from repro.topology import Mesh2D, XYRouting


@pytest.fixture()
def setup():
    mesh = Mesh2D(6, 6)
    return mesh, XYRouting(mesh)


def rand_stream(rng, sid, nodes=36, levels=5):
    src = rng.randrange(nodes)
    dst = rng.randrange(nodes)
    while dst == src:
        dst = rng.randrange(nodes)
    period = rng.randint(20, 60)
    return MessageStream(
        sid, src, dst, priority=rng.randint(1, levels), period=period,
        length=rng.randint(1, 6), deadline=rng.randint(12, period),
    )


def ms(mesh, sid, src, dst, priority, period=200, length=10, deadline=None):
    return MessageStream(
        sid, mesh.node_xy(*src), mesh.node_xy(*dst), priority=priority,
        period=period, length=length, deadline=deadline or period,
    )


class TestEngineBasics:
    def test_admit_and_report(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing, incremental=True)
        d = eng.try_admit(ms(mesh, 0, (0, 0), (5, 0), priority=1))
        assert d.admitted and d.violations == ()
        assert len(eng.admitted) == 1
        assert eng.current_report().success

    def test_empty_report_trivial_success(self, setup):
        _, routing = setup
        eng = IncrementalAdmissionEngine(routing)
        report = eng.current_report()
        assert report.success and report.verdicts == {}

    def test_rejection_rolls_back_all_caches(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing, incremental=True)
        victim = ms(mesh, 0, (0, 0), (5, 0), priority=1, length=10,
                    period=500, deadline=15)
        assert eng.try_admit(victim).admitted
        before = report_to_spec(eng.current_report())
        aggressor = ms(mesh, 1, (1, 0), (5, 1), priority=2, length=30,
                       period=40, deadline=200)
        d = eng.try_admit(aggressor)
        assert not d.admitted and 0 in d.violations
        assert len(eng.admitted) == 1
        assert report_to_spec(eng.current_report()) == before
        with pytest.raises(StreamError):
            eng.verdict(1)

    def test_batch_all_or_nothing(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing, incremental=True)
        good = ms(mesh, 0, (0, 0), (5, 0), priority=1)
        bad = ms(mesh, 1, (0, 1), (5, 1), priority=1, deadline=2)
        assert not eng.try_admit([good, bad]).admitted
        assert len(eng.admitted) == 0

    def test_empty_and_duplicate_requests(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing)
        with pytest.raises(AnalysisError):
            eng.try_admit([])
        assert eng.try_admit(ms(mesh, 0, (0, 0), (3, 0), priority=1)).admitted
        with pytest.raises(StreamError):
            eng.try_admit(ms(mesh, 0, (0, 1), (3, 1), priority=1))
        a = ms(mesh, 5, (0, 1), (3, 1), priority=1)
        b = ms(mesh, 5, (0, 2), (3, 2), priority=1)
        with pytest.raises(StreamError):
            eng.try_admit([a, b])

    def test_release_unknown_id_names_it(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing, incremental=True)
        eng.try_admit(ms(mesh, 0, (0, 0), (3, 0), priority=1))
        with pytest.raises(StreamError, match=r"\[7\]"):
            eng.release([0, 7])
        # Atomic: the known id was not removed either.
        assert 0 in eng.admitted

    def test_fresh_id_monotonic_never_reuses(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing)
        a = eng.fresh_id()
        assert eng.try_admit(ms(mesh, a, (0, 0), (3, 0), priority=1)).admitted
        eng.release(a)
        assert eng.fresh_id() > a
        # Explicitly requested ids advance the counter too.
        eng.try_admit(ms(mesh, 40, (0, 1), (3, 1), priority=1))
        eng.release(40)
        assert eng.fresh_id() > 40

    def test_closure_matches_fresh_hp_sets(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing, incremental=True)
        streams = [
            ms(mesh, 0, (0, 0), (5, 0), priority=3, length=2),
            ms(mesh, 1, (2, 0), (2, 4), priority=2, length=2),
            ms(mesh, 2, (0, 2), (4, 2), priority=1, length=2),
        ]
        for s in streams:
            assert eng.try_admit(s).admitted
        fresh = build_all_hp_sets(
            StreamSet(eng.admitted), routing
        )
        for sid in eng.admitted.ids():
            assert eng.closure(sid) == fresh[sid].ids()
        with pytest.raises(StreamError):
            eng.closure(99)

    def test_env_escape_hatch(self, setup, monkeypatch):
        _, routing = setup
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert not incremental_enabled_default()
        assert not IncrementalAdmissionEngine(routing).incremental
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        assert IncrementalAdmissionEngine(routing).incremental
        monkeypatch.delenv("REPRO_INCREMENTAL")
        assert IncrementalAdmissionEngine(routing).incremental

    def test_stats_counters(self, setup):
        mesh, routing = setup
        eng = IncrementalAdmissionEngine(routing, incremental=True)
        eng.try_admit(ms(mesh, 0, (0, 0), (3, 0), priority=1))
        eng.try_admit(ms(mesh, 1, (0, 1), (3, 1), priority=1))
        eng.release(0)
        stats = eng.stats.to_dict()
        assert stats["ops"] == 3
        assert stats["admits"] == 2 and stats["releases"] == 1
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0


class TestPreparedAnalyzer:
    def test_from_prepared_matches_normal(self, setup):
        mesh, routing = setup
        rng = random.Random(3)
        streams = StreamSet(rand_stream(rng, i) for i in range(8))
        normal = FeasibilityAnalyzer(streams, routing)
        prepared = FeasibilityAnalyzer.from_prepared(
            normal.streams, normal.channels, normal.blockers,
            normal.hp_sets, routing=routing,
        )
        a = normal.determine_feasibility()
        b = prepared.determine_feasibility()
        assert a.verdicts == b.verdicts and a.success == b.success

    def test_from_prepared_validates_coverage(self, setup):
        mesh, routing = setup
        streams = StreamSet([ms(mesh, 0, (0, 0), (3, 0), priority=1)])
        normal = FeasibilityAnalyzer(streams, routing)
        with pytest.raises(AnalysisError, match="channels"):
            FeasibilityAnalyzer.from_prepared(
                normal.streams, {}, normal.blockers, normal.hp_sets
            )
        unresolved = StreamSet([ms(mesh, 0, (0, 0), (3, 0), priority=1)])
        with pytest.raises(AnalysisError, match="latency"):
            FeasibilityAnalyzer.from_prepared(
                unresolved, normal.channels, normal.blockers,
                normal.hp_sets,
            )


class TestFuzzedEquivalence:
    """ISSUE 3 acceptance: 500+ op fuzzed trace, bit-identical reports."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_incremental_vs_full_500_ops(self, setup, seed):
        mesh, routing = setup
        rng = random.Random(seed)
        inc = IncrementalAdmissionEngine(routing, incremental=True)
        full = IncrementalAdmissionEngine(routing, incremental=False)
        live = []
        for op in range(520):
            if live and rng.random() < 0.45:
                sid = live.pop(rng.randrange(len(live)))
                inc.release(sid)
                full.release(sid)
            else:
                sid = inc.fresh_id()
                assert full.fresh_id() == sid
                stream = rand_stream(rng, sid)
                d1 = inc.try_admit(stream)
                d2 = full.try_admit(stream)
                assert d1.admitted == d2.admitted, f"op {op}"
                assert d1.violations == d2.violations, f"op {op}"
                assert d1.report.verdicts == d2.report.verdicts, f"op {op}"
                if d1.admitted:
                    live.append(sid)
            r1, r2 = inc.current_report(), full.current_report()
            assert r1.verdicts == r2.verdicts, f"op {op}"
            assert report_to_spec(r1) == report_to_spec(r2), f"op {op}"
            # Pin against a from-scratch analyzer periodically (each one
            # is a full O(n) reanalysis; every op would be quadratic).
            # Built under the engine's default backend so the pin holds
            # on the REPRO_ANALYSIS_BACKEND CI legs too.
            if op % 40 == 0 and len(inc.admitted):
                from repro.core import backends

                fresh = backends.get(inc.default_analysis).analyzer(
                    StreamSet(inc.admitted), routing
                ).determine_feasibility()
                assert fresh.verdicts == r1.verdicts, f"op {op}"
        # The incremental engine must actually have been incremental.
        assert inc.stats.verdicts_reused > inc.stats.verdicts_recomputed
        assert full.stats.verdicts_reused == 0

    def test_closures_track_full_mode(self, setup):
        mesh, routing = setup
        rng = random.Random(7)
        inc = IncrementalAdmissionEngine(routing, incremental=True)
        full = IncrementalAdmissionEngine(routing, incremental=False)
        live = []
        for _ in range(120):
            if live and rng.random() < 0.4:
                sid = live.pop(rng.randrange(len(live)))
                inc.release(sid)
                full.release(sid)
            else:
                sid = inc.fresh_id()
                full.fresh_id()
                stream = rand_stream(rng, sid)
                if inc.try_admit(stream).admitted:
                    live.append(sid)
                    full.try_admit(stream)
                else:
                    full.try_admit(stream)
            for sid2 in inc.admitted.ids():
                assert inc.closure(sid2) == full.closure(sid2)
