"""Golden regression tests: exact deterministic pins.

Everything in this repository is deterministic under fixed seeds, so these
tests pin exact values produced by the current implementation. They are
regression tripwires: any change to workload generation, the analysis, the
simulator's arbitration, or the statistics will trip one of them — which
is the point. If a change is *intended* to alter results, update the pins
alongside it and say why in the commit.
"""

import json
import pathlib

import pytest

from repro.analysis import run_paper_table, run_table_experiment
from repro.core.feasibility import FeasibilityAnalyzer
from repro.sim import PaperWorkload, WormholeSimulator
from repro.topology import Mesh2D, XYRouting

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


class TestGoldenPins:
    def test_table_experiment_ratios(self):
        r = run_table_experiment(
            name="golden", num_streams=20, priority_levels=4, seed=1,
            sim_time=8_000, warmup=1_000,
        )
        ratios = {p: round(v.mean, 6) for p, v in r.rows.items()}
        assert ratios == {
            4: 0.857995, 3: 0.911111, 2: 0.810796, 1: 0.816092,
        }

    def test_workload_bounds(self, net):
        mesh, rt = net
        wl = PaperWorkload(num_streams=12, priority_levels=3, seed=7,
                           period_range=(200, 500))
        an = FeasibilityAnalyzer(wl.generate(mesh), rt)
        assert an.all_upper_bounds(max_horizon=1 << 16) == {
            0: 36, 1: 29, 2: 31, 3: 37, 4: 32, 5: 44,
            6: 96, 7: 45, 8: 41, 9: 60, 10: 93, 11: 41,
        }

    def test_simulated_transfer_count(self, net):
        mesh, rt = net
        wl = PaperWorkload(num_streams=12, priority_levels=3, seed=7,
                           period_range=(200, 500))
        streams = wl.generate(mesh)
        sim = WormholeSimulator(mesh, rt, streams)
        stats = sim.simulate_streams(4_000)
        assert sim.total_transfers == 31_073
        assert stats.unfinished == 0

    def test_paper_example_is_the_master_pin(self, paper_streams, xy10,
                                             paper_hp_override):
        an = FeasibilityAnalyzer(paper_streams, xy10,
                                 hp_override=paper_hp_override)
        assert an.determine_feasibility().upper_bounds() == {
            0: 7, 1: 8, 2: 26, 3: 20, 4: 33,
        }

    def test_table5_matches_committed_golden_file(self):
        """Table 5 (60 streams, 15 levels) against tests/golden/table5.json.

        Pins every per-stream bound U_i and the per-priority ratio
        statistics of the simulated workload. Regenerate the file with the
        snippet in its sibling README if a change intentionally moves it.
        """
        golden = json.loads((GOLDEN_DIR / "table5.json").read_text())
        cfg = golden["config"]
        r = run_paper_table(
            cfg["table"], seed=cfg["seed"], sim_time=cfg["sim_time"],
            warmup=cfg["warmup"],
        )
        assert {str(k): v for k, v in sorted(r.upper_bounds.items())} \
            == golden["upper_bounds"]
        actual_rows = {
            str(p): {
                "num_streams": v.num_streams,
                "num_unbounded": v.num_unbounded,
                "mean": round(v.mean, 6),
                "minimum": round(v.minimum, 6),
                "maximum": round(v.maximum, 6),
            }
            for p, v in sorted(r.rows.items())
        }
        assert actual_rows == golden["ratios_by_priority"]
