"""Unit tests for channel arbiters (repro.sim.arbiter)."""

import pytest

from repro.sim.arbiter import (
    FCFSArbiter,
    PriorityPreemptiveArbiter,
    RoundRobinArbiter,
)
from repro.sim.flit import Message
from repro.sim.router import VirtualChannel


def cand(msg_id, priority, stream_id=None, release=0):
    m = Message(
        msg_id=msg_id,
        stream_id=stream_id if stream_id is not None else msg_id,
        priority=priority, src=0, dst=1, length=3, release=release,
        path=(0, 1),
    )
    vc = VirtualChannel(0, -1, 0, None)
    return (vc, m)


CH = (0, 1)


class TestPriorityPreemptive:
    def test_highest_priority_wins(self):
        arb = PriorityPreemptiveArbiter()
        a, b, c = cand(0, 1), cand(1, 5), cand(2, 3)
        assert arb.select(CH, [a, b, c], now=0) is b

    def test_tie_breaks_by_stream_id(self):
        arb = PriorityPreemptiveArbiter()
        a, b = cand(0, 2, stream_id=7), cand(1, 2, stream_id=3)
        assert arb.select(CH, [a, b], now=0) is b

    def test_tie_breaks_by_msg_id(self):
        arb = PriorityPreemptiveArbiter()
        a, b = cand(9, 2, stream_id=3), cand(4, 2, stream_id=3)
        assert arb.select(CH, [a, b], now=0) is b

    def test_order_independent(self):
        arb = PriorityPreemptiveArbiter()
        cands = [cand(0, 1), cand(1, 5), cand(2, 3)]
        assert (
            arb.select(CH, cands, 0)
            is arb.select(CH, list(reversed(cands)), 0)
        )


class TestFCFS:
    def test_earliest_release_wins(self):
        arb = FCFSArbiter()
        a, b = cand(0, 5, release=10), cand(1, 1, release=3)
        assert arb.select(CH, [a, b], now=20) is b

    def test_priority_ignored(self):
        arb = FCFSArbiter()
        lo, hi = cand(0, 1, release=0), cand(1, 9, release=0)
        # Same release: tie-break by stream id -> the low-priority stream 0.
        assert arb.select(CH, [lo, hi], now=0) is lo


class TestRoundRobin:
    def test_rotates_between_candidates(self):
        arb = RoundRobinArbiter()
        a, b, c = cand(0, 1), cand(1, 1), cand(2, 1)
        winners = [arb.select(CH, [a, b, c], t)[1].msg_id for t in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_per_channel_state(self):
        arb = RoundRobinArbiter()
        a, b = cand(0, 1), cand(1, 1)
        assert arb.select((0, 1), [a, b], 0) is a
        # A different channel starts its own rotation.
        assert arb.select((5, 6), [a, b], 0) is a
        assert arb.select((0, 1), [a, b], 1) is b

    def test_reset_clears_state(self):
        arb = RoundRobinArbiter()
        a, b = cand(0, 1), cand(1, 1)
        arb.select(CH, [a, b], 0)
        arb.reset()
        assert arb.select(CH, [a, b], 1) is a

    def test_wraps_after_last(self):
        arb = RoundRobinArbiter()
        a, b = cand(0, 1), cand(1, 1)
        assert arb.select(CH, [a, b], 0) is a
        assert arb.select(CH, [a, b], 1) is b
        assert arb.select(CH, [a, b], 2) is a
