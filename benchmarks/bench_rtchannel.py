"""E-RTC — wormhole switching vs store-and-forward real-time channels.

The paper's introduction positions flit-level preemptive wormhole
switching against the real-time-channel work on packet-switched multi-hop
networks. This benchmark runs the comparison the introduction implies, on
identical workloads:

* measured latency per priority class: wormhole pipelines (h + C - 1
  no-load) vs store-and-forward (h * C no-load);
* analytic guarantees: the paper's timing-diagram bound vs the holistic
  per-link bound of the RT-channel world, each validated against its own
  simulator.
"""

import numpy as np

from benchmarks.common import write_output
from repro.core.feasibility import FeasibilityAnalyzer
from repro.rtchannel import StoreAndForwardSimulator, holistic_bounds
from repro.sim import PaperWorkload, WormholeSimulator
from repro.topology import Mesh2D, XYRouting

SIM_TIME = 15_000
WARMUP = 1_500


def test_rtchannel_comparison(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    wl = PaperWorkload(num_streams=20, priority_levels=4, seed=0,
                       period_range=(400, 900))
    streams = wl.generate(mesh)

    def run():
        worm_sim = WormholeSimulator(mesh, routing, streams, warmup=WARMUP)
        worm_stats = worm_sim.simulate_streams(SIM_TIME)
        saf_sim = StoreAndForwardSimulator(mesh, routing, streams,
                                           warmup=WARMUP)
        saf_stats = saf_sim.simulate_streams(SIM_TIME)
        worm_bounds = FeasibilityAnalyzer(streams, routing).all_upper_bounds(
            max_horizon=1 << 16
        )
        saf_bounds = holistic_bounds(streams, routing)
        return worm_stats, saf_stats, worm_bounds, saf_bounds

    worm_stats, saf_stats, worm_bounds, saf_bounds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        "E-RTC — wormhole (paper) vs store-and-forward real-time channels "
        "(20 streams, 4 levels, identical workload)",
        f"{'prio':>5} {'worm mean/max':>16} {'SAF mean/max':>16} "
        f"{'mean speedup':>13}",
    ]
    wp, sp = worm_stats.priority_stats(), saf_stats.priority_stats()
    for p in sorted(wp, reverse=True):
        w, s = wp[p], sp[p]
        lines.append(
            f"P{p:>4} {w.mean:8.1f}/{w.maximum:<7d} "
            f"{s.mean:8.1f}/{s.maximum:<7d} {s.mean / w.mean:12.1f}x"
        )

    ratios = []
    both = 0
    for s in streams:
        wb, sb = worm_bounds[s.stream_id], saf_bounds[s.stream_id].bound
        if wb > 0 and sb > 0:
            both += 1
            ratios.append(sb / wb)
    lines.append(
        f"analytic guarantees: wormhole bound tighter by "
        f"{np.mean(ratios):.1f}x on average over {both} streams "
        f"(min {np.min(ratios):.1f}x, max {np.max(ratios):.1f}x)"
    )

    # Per-substrate soundness.
    viol_w = sum(
        1 for sid in worm_stats.stream_ids()
        if worm_bounds[sid] > 0
        and worm_stats.max_delay(sid) > worm_bounds[sid]
    )
    viol_s = sum(
        1 for sid in saf_stats.stream_ids()
        if saf_bounds[sid].bound > 0
        and saf_stats.max_delay(sid) > saf_bounds[sid].bound
    )
    lines.append(
        f"soundness: wormhole violations {viol_w}, SAF violations {viol_s}"
    )
    write_output("rtchannel", "\n".join(lines))

    assert viol_w == 0 and viol_s == 0
    assert all(r > 1.0 for r in ratios)  # wormhole bound always tighter here
    top = max(wp)
    assert sp[top].mean > 2 * wp[top].mean  # SAF latency penalty