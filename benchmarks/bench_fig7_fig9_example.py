"""E-F7/F8/F9 — paper section 4.4 worked example (Figs. 7, 8 and 9).

Fig. 7: the initial (direct-only) timing diagram of HP_4 — exactly 7 free
slots within the deadline, fewer than M4's latency of 10.
Fig. 8: HP_4's blocking dependency graph.
Fig. 9: the final diagram after Modify_Diagram — M0's 2nd/3rd and M1's 4th
instances removed, M3's first instance compacted, U_4 = 33.
The full example yields U = (7, 8, 26, 20, 33).
"""

import pytest

from benchmarks.common import write_output
from repro.core.bdg import build_bdg
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.hpset import HPEntry, HPSet
from repro.core.render import render_bdg, render_diagram, render_hp_set
from repro.core.streams import MessageStream, StreamSet
from repro.topology import Mesh2D, XYRouting

PAPER_EXAMPLE = [
    ((7, 3), (7, 7), 5, 15, 4, 15, 7),
    ((1, 1), (5, 4), 4, 10, 2, 10, 8),
    ((2, 1), (7, 5), 3, 40, 4, 40, 12),
    ((4, 1), (8, 5), 2, 45, 9, 45, 16),
    ((6, 1), (9, 3), 1, 50, 6, 50, 10),
]
PAPER_U = {0: 7, 1: 8, 2: 26, 3: 20, 4: 33}


@pytest.fixture()
def example():
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    streams = StreamSet()
    for i, (s, r, p, t, c, d, latency) in enumerate(PAPER_EXAMPLE):
        streams.add(MessageStream(
            i, mesh.node_xy(*s), mesh.node_xy(*r), priority=p, period=t,
            length=c, deadline=d, latency=latency,
        ))
    override = {
        3: HPSet(3, [HPEntry.direct(1)]),
        4: HPSet(4, [HPEntry.indirect(0, [2]), HPEntry.indirect(1, [2, 3]),
                     HPEntry.direct(2), HPEntry.direct(3)]),
    }
    return mesh, routing, streams, override


def test_fig7_fig9_worked_example(benchmark, example):
    mesh, routing, streams, override = example

    def full_example():
        an = FeasibilityAnalyzer(streams, routing, hp_override=override)
        report = an.determine_feasibility()
        init, _ = an.diagram_for(4, apply_modify=False)
        final, removed = an.diagram_for(4)
        return an, report, init, final, removed

    an, report, init, final, removed = benchmark.pedantic(
        full_example, rounds=1, iterations=1
    )

    parts = ["section 4.4 worked example (paper HP sets)"]
    for sid, hp in sorted(an.hp_sets.items()):
        parts.append(render_hp_set(hp))
    parts.append(
        f"\nFig. 7 — initial timing diagram of HP_4 "
        f"({init.num_free_slots()} free slots < L_4 = 10):"
    )
    parts.append(render_diagram(init))
    g = build_bdg(an.hp_sets[4], an.blockers)
    parts.append("\nFig. 8 — " + render_bdg(g, 4))
    parts.append(
        "\nFig. 9 — final diagram after Modify_Diagram (removed: "
        + ", ".join(f"M{k} inst {sorted(v)}" for k, v in sorted(removed.items()))
        + "):"
    )
    parts.append(render_diagram(final, upper_bound=final.upper_bound(10)))
    parts.append(
        f"\nU = {report.upper_bounds()}  (paper: {PAPER_U}) -> "
        f"{'success' if report.success else 'fail'}"
    )
    write_output("fig7_fig9_example", "\n".join(parts))

    assert init.num_free_slots() == 7
    assert report.upper_bounds() == PAPER_U
    assert report.success
    assert removed == {0: {1, 2}, 1: {3}}
