"""E-SCALE — cost of the analysis and the simulator as |M| grows.

The paper runs its analysis on a host processor at job-admission time, so
its cost matters. This benchmark measures (a) the feasibility analysis and
(b) a 10000-flit-time simulation at |M| in {10, 20, 40, 60} on the 10x10
mesh, using pytest-benchmark's timer for the |M| = 60 analysis case and
manual timing for the sweep table."""

import time

import numpy as np

from benchmarks.common import write_output
from repro.core.feasibility import FeasibilityAnalyzer
from repro.sim import PaperWorkload, WormholeSimulator
from repro.topology import Mesh2D, XYRouting

MAX_HORIZON = 1 << 16


def test_scaling(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)

    rows = []
    for m in (10, 20, 40, 60):
        wl = PaperWorkload(num_streams=m, priority_levels=max(1, m // 4),
                           seed=0)
        streams = wl.generate(mesh)

        t0 = time.perf_counter()
        an = FeasibilityAnalyzer(streams, routing)
        bounds = an.all_upper_bounds(max_horizon=MAX_HORIZON)
        t_analysis = time.perf_counter() - t0

        t0 = time.perf_counter()
        sim = WormholeSimulator(mesh, routing, streams, warmup=1_000)
        stats = sim.simulate_streams(10_000)
        t_sim = time.perf_counter() - t0

        rows.append((m, t_analysis, t_sim, sim.total_transfers))

    # The benchmarked unit: the full |M|=60 analysis.
    wl60 = PaperWorkload(num_streams=60, priority_levels=15, seed=0)
    streams60 = wl60.generate(mesh)
    benchmark.pedantic(
        lambda: FeasibilityAnalyzer(streams60, routing).all_upper_bounds(
            max_horizon=MAX_HORIZON
        ),
        rounds=3,
        iterations=1,
    )

    lines = [
        "E-SCALE — analysis & simulation cost vs |M| (10x10 mesh)",
        f"{'|M|':>5} {'analysis (s)':>13} {'sim 10k ft (s)':>15} "
        f"{'flit transfers':>15}",
    ]
    for m, ta, ts, transfers in rows:
        lines.append(f"{m:5d} {ta:13.3f} {ts:15.3f} {transfers:15d}")
    write_output("scaling", "\n".join(lines))

    # The analysis must stay interactive at the paper's largest scale.
    assert rows[-1][1] < 30.0
