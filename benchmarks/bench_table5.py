"""E-T5 — paper Table 5: 15 priority levels, 60 message streams.

Paper's observation: at |M| = 60, fifteen levels (= |M|/4) restore tight
bounds at the top of the priority range, and ratios degrade monotonically
(in trend) towards the lower levels."""

import numpy as np

from benchmarks.common import (
    run_table_seeds,
    soundness_report,
    summarize_seeds,
    write_output,
)


def test_table5(benchmark):
    results = benchmark.pedantic(
        lambda: run_table_seeds("table5", num_streams=60, priority_levels=15),
        rounds=1,
        iterations=1,
    )
    text = summarize_seeds("table5", results)
    text += "\n" + soundness_report(results)

    # Shape: the upper third of the priority range must out-ratio the
    # lower third (trend across seeds).
    upper, lower = [], []
    for r in results:
        for p, stats in r.rows.items():
            (upper if p > 10 else lower if p <= 5 else []).append(stats.mean)
    up, lo = float(np.mean(upper)), float(np.mean(lower))
    text += (
        f"\nshape: mean ratio of levels 11-15 = {up:.3f} vs "
        f"levels 1-5 = {lo:.3f} (paper: high levels far tighter)"
    )
    write_output("table5", text)
    assert up > lo
