"""E-AB1 — ablation: how much does Modify_Diagram tighten the bounds?

Modify_Diagram (the indirect-interference release) is the part of the
algorithm beyond a plain busy-window argument; the paper's section 4.4
example only becomes feasible because of it. This ablation quantifies its
effect on random paper workloads: per-stream bounds with and without the
release step, plus the fixpoint variant (repeating the release sweep until
nothing more can be freed)."""

import numpy as np

from benchmarks.common import write_output
from repro.core.feasibility import FeasibilityAnalyzer
from repro.sim.traffic import PaperWorkload
from repro.topology import Mesh2D, XYRouting

MAX_HORIZON = 1 << 16


def bounds_for(streams, routing, **kw):
    an = FeasibilityAnalyzer(streams, routing, **kw)
    return an.all_upper_bounds(max_horizon=MAX_HORIZON)


#: (label, workload kwargs). The paper's own constants put U inside the
#: first period window of every blocker, where Modify_Diagram cannot help
#: (the first instance of an indirect element is never releasable at the
#: critical instant); the high-interference config makes U span several
#: windows, which is where the release step pays off.
CONFIGS = [
    ("paper constants (20 str, 4 lvl)",
     dict(num_streams=20, priority_levels=4)),
    ("high interference (25 str, 2 lvl, T 80-160, C 8-20)",
     dict(num_streams=25, priority_levels=2,
          period_range=(80, 160), length_range=(8, 20))),
]


def test_ablation_modify(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)

    def run():
        rows = []
        for label, kw in CONFIGS:
            for seed in range(3):
                wl = PaperWorkload(seed=seed, **kw)
                streams = wl.generate(mesh)
                direct = bounds_for(streams, routing, use_modify=False)
                modify = bounds_for(streams, routing, use_modify=True)
                fixpoint = bounds_for(
                    streams, routing, use_modify=True, modify_fixpoint=True
                )
                rows.append((label, seed, streams, direct, modify, fixpoint))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation E-AB1 — Modify_Diagram effect on bounds (10x10 mesh)",
        f"{'config':<48} {'seed':>4} {'w/ indirect':>12} {'tightened':>10} "
        f"{'rescued':>8} {'mean gain':>10} {'fixpoint+':>10}",
    ]
    total_tightened = 0
    for label, seed, streams, direct, modify, fixpoint in rows:
        an = FeasibilityAnalyzer(streams, routing)
        with_indirect = sum(
            1 for s in streams if an.hp_sets[s.stream_id].indirect_ids()
        )
        gains = []
        extra = rescued = tightened = 0
        for sid in direct:
            d, m, f = direct[sid], modify[sid], fixpoint[sid]
            if d > 0 and m > 0 and m < d:
                tightened += 1
                gains.append((d - m) / d)
            elif d < 0 < m:
                rescued += 1  # unbounded without Modify, bounded with it
            if m > 0 and 0 < f < m:
                extra += 1
        total_tightened += tightened + rescued
        mean_gain = float(np.mean(gains)) if gains else 0.0
        lines.append(
            f"{label:<48} {seed:4d} {with_indirect:12d} {tightened:10d} "
            f"{rescued:8d} {mean_gain:9.1%} {extra:10d}"
        )
    lines.append(
        "(gain = (U_direct - U_modify) / U_direct; rescued = bound only "
        "exists with Modify; fixpoint+ = extra tightening from iterating "
        "the release sweep)"
    )
    lines.append(
        "finding: with the paper's own constants U falls inside every "
        "blocker's first window and Modify_Diagram changes nothing; it "
        "matters exactly when interference spans multiple windows (as in "
        "the paper's section 4.4 example, T=10..50 vs U=33)."
    )
    write_output("ablation_modify", "\n".join(lines))

    # Sanity: modify never loosens anything, and the high-interference
    # config demonstrates a real effect.
    for label, seed, streams, direct, modify, fixpoint in rows:
        for sid in direct:
            if direct[sid] > 0 and modify[sid] > 0:
                assert modify[sid] <= direct[sid]
            if modify[sid] > 0 and fixpoint[sid] > 0:
                assert fixpoint[sid] <= modify[sid]
    assert total_tightened > 0
