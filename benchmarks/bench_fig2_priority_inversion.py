"""E-F2 — paper Fig. 2: priority inversion in classical wormhole switching.

The figure is qualitative (a blocked high-priority message at a switch); we
regenerate it quantitatively: the same contention pattern is simulated under
classical single-VC wormhole switching and under the paper's per-priority
preemptive VCs, and the top-priority stream's latency blow-up is reported.
"""

from benchmarks.common import write_output
from repro.baselines import compare_arbitration, priority_inversion_scenario


def test_fig2_priority_inversion(benchmark):
    mesh, routing, streams = priority_inversion_scenario()

    cmp = benchmark.pedantic(
        lambda: compare_arbitration(
            mesh, routing, streams, until=20_000, warmup=2_000
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Fig. 2 — priority inversion (classical vs preemptive wormhole)",
        f"{'prio':>5} {'preemptive mean/max':>22} {'classical mean/max':>22} "
        f"{'mean blow-up':>13}",
    ]
    for p in sorted(cmp.preemptive, reverse=True):
        pre, cla = cmp.preemptive[p], cmp.classical[p]
        lines.append(
            f"P{p:>4} {pre.mean:10.1f}/{pre.maximum:<10d} "
            f"{cla.mean:10.1f}/{cla.maximum:<10d} {cmp.blowup(p):13.2f}x"
        )
    top = max(cmp.preemptive)
    lines.append(
        f"top-priority (P{top}) messages are delayed "
        f"{cmp.blowup(top):.1f}x longer without preemption — the priority "
        f"inversion the paper's flit-level preemptive switching removes."
    )
    write_output("fig2_priority_inversion", "\n".join(lines))

    assert cmp.blowup(top) > 2.0
    # Under preemption the top stream sees its no-load latency.
    top_stream = next(s for s in streams if s.priority == top)
    hops = routing.hop_count(top_stream.src, top_stream.dst)
    assert cmp.preemptive[top].maximum == hops + top_stream.length - 1
