"""E-F5 — paper Fig. 5: the blocking dependency graph of the Fig. 6 setup.

Fig. 5 draws the chain M4 -> M3 -> M2 -> M1 (each stream blocked by the
next). We rebuild it from the HP set and the direct-blocking relation and
verify the BFS layers Modify_Diagram walks."""

from benchmarks.common import write_output
from repro.core.bdg import bfs_layers, build_bdg, indirect_processing_order
from repro.core.hpset import HPEntry, HPSet
from repro.core.render import render_bdg
from repro.core.streams import MessageStream, StreamSet


def ms(i, priority, period, length):
    return MessageStream(i, 0, 1, priority=priority, period=period,
                         length=length, deadline=period)


def test_fig5_bdg(benchmark):
    streams = StreamSet([
        ms(1, 3, 10, 2), ms(2, 2, 15, 3), ms(3, 1, 13, 4),
        ms(4, 0, 100, 6),
    ])
    hp = HPSet(4, [
        HPEntry.indirect(1, [2]),
        HPEntry.indirect(2, [3]),
        HPEntry.direct(3),
    ])
    blockers = {4: (3,), 3: (2,), 2: (1,), 1: ()}

    g = benchmark.pedantic(
        lambda: build_bdg(hp, blockers), rounds=1, iterations=1
    )

    text = (
        "Fig. 5 — blocking dependency graph (chain M4 -> M3 -> M2 -> M1)\n"
        + render_bdg(g, 4)
        + "\nModify_Diagram processing order (nearest chains first): "
        + " then ".join(
            f"M{i}" for i in indirect_processing_order(hp, blockers, streams)
        )
    )
    write_output("fig5_bdg", text)

    assert list(g.edges) == [(2, 1), (3, 2), (4, 3)] or set(g.edges) == {
        (4, 3), (3, 2), (2, 1)
    }
    assert bfs_layers(g, 4) == [(4,), (3,), (2,), (1,)]
    assert indirect_processing_order(hp, blockers, streams) == (2, 1)
