"""E-F4 / E-F6 — paper Figs. 4 and 6: delay-upper-bound calculation.

Fig. 4: three directly blocking streams M1 (T=10, C=2), M2 (T=15, C=3),
M3 (T=13, C=4) above a stream of network latency 6 — the paper reads
U = 26 off the timing diagram.

Fig. 6: the same streams with M1 and M2 re-marked INDIRECT (intermediates
M2 and M3 respectively); releasing the unforwardable instances reduces the
bound to U = 22.
"""

import pytest

from benchmarks.common import write_output
from repro.core.hpset import HPEntry, HPSet
from repro.core.modify import modify_diagram
from repro.core.render import render_diagram
from repro.core.streams import MessageStream, StreamSet
from repro.core.timing_diagram import generate_init_diagram


def ms(i, priority, period, length):
    return MessageStream(i, 0, 1, priority=priority, period=period,
                         length=length, deadline=period)


ROWS = (ms(1, 3, 10, 2), ms(2, 2, 15, 3), ms(3, 1, 13, 4))
LATENCY = 6


def test_fig4_direct_blocking(benchmark):
    diagram = benchmark.pedantic(
        lambda: generate_init_diagram(4, ROWS, dtime=30),
        rounds=1,
        iterations=1,
    )
    u = diagram.upper_bound(LATENCY)
    text = (
        "Fig. 4 — U calculation, direct blocking "
        f"(M1 T=10 C=2, M2 T=15 C=3, M3 T=13 C=4, L=6)\n"
        + render_diagram(diagram, upper_bound=u)
        + f"\npaper: U = 26; measured: U = {u}"
    )
    write_output("fig4_ucalc_direct", text)
    assert u == 26


def test_fig6_indirect_blocking(benchmark):
    owner = ms(4, priority=0, period=100, length=LATENCY)
    streams = StreamSet([*ROWS, owner])
    hp = HPSet(4, [
        HPEntry.indirect(1, [2]),
        HPEntry.indirect(2, [3]),
        HPEntry.direct(3),
    ])
    blockers = {4: (3,), 3: (2,), 2: (1,), 1: ()}

    diagram, removed = benchmark.pedantic(
        lambda: modify_diagram(owner, hp, streams, blockers, 30),
        rounds=1,
        iterations=1,
    )
    u = diagram.upper_bound(LATENCY)
    text = (
        "Fig. 6 — U calculation, indirect blocking "
        "(M1 indirect via M2; M2 indirect via M3)\n"
        + render_diagram(diagram, upper_bound=u)
        + f"\nremoved instances: "
        + ", ".join(f"M{k}: {sorted(v)}" for k, v in sorted(removed.items()))
        + f"\npaper: U = 22 (M1's 2nd and 3rd instances removed); "
        f"measured: U = {u}"
    )
    write_output("fig6_ucalc_indirect", text)
    assert u == 22
    assert {1, 2}.issubset(removed[1])
