"""E-T2 — paper Table 2: 1 priority level, 60 message streams.

Paper's observation: "If more message streams are generated, the ratio is
extremely exacerbated" — with 60 same-priority streams the bound becomes an
order of magnitude looser than with 20 (Table 1)."""

from benchmarks.common import (
    run_table_seeds,
    soundness_report,
    summarize_seeds,
    write_output,
)


def test_table2(benchmark):
    results = benchmark.pedantic(
        lambda: run_table_seeds("table2", num_streams=60, priority_levels=1),
        rounds=1,
        iterations=1,
    )
    text = summarize_seeds("table2", results)
    text += "\n" + soundness_report(results)

    # Shape check vs Table 1: 60 streams must be markedly worse than 20.
    from benchmarks.common import run_table_seeds as rts

    t1 = rts("table1_ref", num_streams=20, priority_levels=1, seeds=[0])
    ratio60 = sum(r.rows[1].mean for r in results) / len(results)
    ratio20 = t1[0].rows[1].mean
    text += (
        f"\nshape: mean ratio with 60 streams = {ratio60:.3f} "
        f"vs 20 streams = {ratio20:.3f} (paper: 60-stream case is far worse)"
    )
    write_output("table2", text)
    assert ratio60 < ratio20
