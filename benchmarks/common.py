"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints the
paper-style rendering and persists it under ``benchmarks/output/`` so the
artifacts survive the pytest run. ``pytest-benchmark`` measures the wall
time of the interesting computation (the analysis, or the full
analysis+simulation pipeline) via ``benchmark.pedantic`` with a single
round — these are experiments, not micro-benchmarks, and a single
deterministic run is the meaningful unit.

Environment knobs:

``REPRO_BENCH_SEEDS``
    Number of workload seeds averaged per table (default 3).
``REPRO_BENCH_SIM_TIME``
    Simulated flit times per run (default 30000, the paper's horizon).
``REPRO_BENCH_PROCS``
    Worker processes for multi-seed runs (default 1 = serial; ``0`` =
    one per CPU; seeds are independent, so results are identical at any
    setting).
"""

from __future__ import annotations

import functools
import os
from pathlib import Path
from typing import Dict, Iterable, List

import numpy as np

from repro.analysis import (
    TableResult,
    format_table,
    map_seeds,
    run_table_experiment,
)

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

N_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "3"))
SIM_TIME = int(os.environ.get("REPRO_BENCH_SIM_TIME", "30000"))
N_PROCS = int(os.environ.get("REPRO_BENCH_PROCS", "1")) or (os.cpu_count() or 1)
WARMUP = 2_000


def write_output(name: str, text: str) -> None:
    """Persist a rendered artifact and echo it to stdout."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def _one_table_seed(
    seed: int, *, name: str, num_streams: int, priority_levels: int
) -> TableResult:
    """Module-level worker for :func:`run_table_seeds` (picklable)."""
    return run_table_experiment(
        name=f"{name}_seed{seed}",
        num_streams=num_streams,
        priority_levels=priority_levels,
        seed=seed,
        sim_time=SIM_TIME,
        warmup=WARMUP,
    )


def run_table_seeds(
    name: str, num_streams: int, priority_levels: int,
    seeds: Iterable[int] = None,
) -> List[TableResult]:
    """Run one table configuration over several workload seeds (seeds run
    in parallel when ``REPRO_BENCH_PROCS > 1``; results are identical)."""
    if seeds is None:
        seeds = range(N_SEEDS)
    worker = functools.partial(
        _one_table_seed,
        name=name,
        num_streams=num_streams,
        priority_levels=priority_levels,
    )
    return map_seeds(worker, list(seeds), processes=N_PROCS)


def summarize_seeds(name: str, results: List[TableResult]) -> str:
    """Render per-seed tables plus the seed-averaged ratio per level."""
    parts = [format_table(r) for r in results]
    pooled: Dict[int, List[float]] = {}
    for r in results:
        for p, stats in r.rows.items():
            pooled.setdefault(p, []).append(stats.mean)
    lines = [f"{name}: seed-averaged ratio per priority level "
             f"({len(results)} seed(s))"]
    for p in sorted(pooled, reverse=True):
        vals = np.asarray(pooled[p])
        lines.append(
            f"  P{p:>3}: mean ratio {vals.mean():.3f} "
            f"(seed spread {vals.min():.3f}..{vals.max():.3f})"
        )
    parts.append("\n".join(lines))
    return "\n\n".join(parts)


def soundness_report(results: List[TableResult]) -> str:
    """Check max observed delay <= U for every stream of every run."""
    total = 0
    violations = []
    for r in results:
        for sid in r.stats.stream_ids():
            u = r.upper_bounds[sid]
            if u <= 0:
                continue
            total += 1
            mx = r.stats.max_delay(sid)
            if mx > u:
                violations.append((r.name, sid, mx, u))
    if violations:
        lines = [f"BOUND VIOLATIONS ({len(violations)}/{total} streams):"]
        lines += [f"  {n} stream {s}: observed {m} > U={u}"
                  for n, s, m, u in violations]
        return "\n".join(lines)
    return f"soundness: max observed delay <= U for all {total} stream-runs"
