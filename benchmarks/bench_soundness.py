"""E-SOUND — the reproduction's central empirical claim, at scale.

Runs a soundness campaign (random workloads -> bounds -> critical-instant
and random-phase simulation -> violation report) across three workload
regimes: the paper's constants, a high-interference regime, and a
many-levels regime. The expected outcome is zero violations everywhere;
any violation would be a counterexample to the paper's method as
implemented here and is reported with its seed for replay.
"""

from benchmarks.common import write_output
from repro.analysis import run_soundness_campaign

REGIMES = [
    ("paper constants", dict(num_streams=12, priority_levels=3,
                             period_range=(400, 900),
                             length_range=(10, 40))),
    ("high interference", dict(num_streams=15, priority_levels=3,
                               period_range=(100, 250),
                               length_range=(8, 20))),
    ("many levels", dict(num_streams=16, priority_levels=16,
                         period_range=(200, 500),
                         length_range=(10, 40))),
]


def test_soundness_campaigns(benchmark):
    def run():
        out = {}
        for margin in (0, 1):
            for name, kw in REGIMES:
                out[(name, f"margin={margin}")] = run_soundness_campaign(
                    workloads=5, sim_time=8_000, seed0=0,
                    residency_margin=margin, **kw
                )
        # F-6 exhibit: the paper's literal per-slot release, corrected for
        # F-4, still violates in the high-interference regime.
        out[("high interference", "margin=1, slot-granular release")] = (
            run_soundness_campaign(
                workloads=5, sim_time=8_000, seed0=0,
                residency_margin=1, modify_granularity="slot",
                **dict(REGIMES)["high interference"],
            )
        )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["E-SOUND — soundness campaigns (observed max delay vs U)"]
    for (name, variant), r in results.items():
        lines.append(f"[{name} | {variant}] {r.summary()}")
    lines.append(
        "finding F-4: the paper's analysis (margin 0) charges an "
        "equal-priority interfering instance exactly C channel slots, but "
        "equal-priority worms share one VC per port and each holds a VC "
        "one slot past its channel occupancy (tail drain). Every observed "
        "violation is exactly +1 slot; residency_margin=1 removes all of "
        "them."
    )
    lines.append(
        "finding F-6: the paper's literal per-slot Modify_Diagram prose "
        "over-releases — erasing part of an instance's demand pretends "
        "flits disappear that in reality transmit later — producing "
        "double-digit violations; the worked example's per-instance "
        "semantics (our default) is clean."
    )
    write_output("soundness", "\n".join(lines))

    for (name, variant), r in results.items():
        if "slot" in variant:
            continue  # the F-6 exhibit is allowed (expected) to violate
        if variant == "margin=1":
            # The residency-corrected analysis must be clean everywhere.
            assert r.sound, f"{name} {variant}: {r.summary()}"
        else:
            # The paper's analysis may show the documented +1-slot
            # equal-priority violations, and nothing worse.
            assert all(v.excess <= 1 for v in r.violations), r.summary()
