#!/usr/bin/env python
"""Time the canonical workloads and write ``BENCH_PR1.json`` at repo root.

Four workloads are timed:

``table1_sim`` / ``table5_sim``
    The paper's smallest (20 streams, 1 level) and largest (60 streams,
    15 levels) table configurations, end to end (workload generation,
    period inflation, flit-level simulation, ratio analysis). Both are
    timed twice — with the event-driven fast path and with the reference
    rescan loop (``REPRO_SIM_FASTPATH=0`` equivalent) — and the recorded
    ``speedup`` is their ratio. Statistics are asserted bit-identical
    between the two paths before any number is written.
``feasibility_60``
    The analysis half alone: delay upper bounds for a 60-stream,
    15-level workload (no simulation), the paper's primary contribution.
``paper_example``
    The section 4.4 worked example script, end to end (stdout discarded).

Environment knobs (shared with the table benchmarks):

* ``REPRO_BENCH_SEEDS``    — seeds averaged per sim workload (default 3);
* ``REPRO_BENCH_SIM_TIME`` — simulated flit times per run (default 30000);
* ``REPRO_BENCH_PROCS``    — worker processes (default 1; 0 = one per CPU);
* ``REPRO_PERF_REPEATS``   — timing repeats, best-of (default 1).

Run:  PYTHONPATH=src python benchmarks/perf/run_perf.py
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import platform
import runpy
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro.analysis.experiments import (  # noqa: E402
    inflate_periods,
    run_table_experiment,
)
from repro.sim.traffic import PaperWorkload  # noqa: E402
from repro.topology.mesh import Mesh2D  # noqa: E402
from repro.topology.routing import XYRouting  # noqa: E402

N_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "3"))
SIM_TIME = int(os.environ.get("REPRO_BENCH_SIM_TIME", "30000"))
REPEATS = int(os.environ.get("REPRO_PERF_REPEATS", "1"))
WARMUP = 2_000
OUT_PATH = REPO_ROOT / "BENCH_PR1.json"


def _best_of(fn) -> float:
    """Best-of-N wall time of ``fn`` (minimum filters scheduler noise)."""
    return min(_timed(fn) for _ in range(max(1, REPEATS)))


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _table_stats_key(result):
    """Everything the two execution paths must agree on, bit for bit."""
    st = result.stats
    return (
        tuple((sid, st.samples(sid)) for sid in st.stream_ids()),
        st.unfinished,
        tuple(sorted(
            (p, r.mean, r.maximum) for p, r in result.rows.items()
        )),
    )


def _run_table(name: str, num_streams: int, levels: int, fast: bool):
    os.environ["REPRO_SIM_FASTPATH"] = "1" if fast else "0"
    try:
        return [
            run_table_experiment(
                name=f"perf_{name}_seed{seed}",
                num_streams=num_streams,
                priority_levels=levels,
                seed=seed,
                sim_time=SIM_TIME,
                warmup=WARMUP,
            )
            for seed in range(N_SEEDS)
        ]
    finally:
        os.environ.pop("REPRO_SIM_FASTPATH", None)


def bench_table_sim(name: str, num_streams: int, levels: int) -> dict:
    """Time one table config on both execution paths; assert equivalence."""
    fast = _best_of(lambda: _run_table(name, num_streams, levels, True))
    slow = _best_of(lambda: _run_table(name, num_streams, levels, False))
    fast_results = _run_table(name, num_streams, levels, True)
    slow_results = _run_table(name, num_streams, levels, False)
    for fr, sr in zip(fast_results, slow_results):
        if _table_stats_key(fr) != _table_stats_key(sr):
            raise AssertionError(
                f"{name}: fast/slow paths diverged on seed {fr.seed} — "
                "refusing to record timings for a broken simulator"
            )
    return {
        "seeds": N_SEEDS,
        "sim_time": SIM_TIME,
        "fast_seconds": round(fast, 4),
        "slow_seconds": round(slow, 4),
        "speedup": round(slow / fast, 3),
    }


def bench_feasibility_60() -> dict:
    """The analysis pipeline alone on the table-5-sized workload."""
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    drawn = PaperWorkload(
        num_streams=60, priority_levels=15, seed=0
    ).generate(mesh)

    def run():
        inflate_periods(drawn, routing)

    return {"seconds": round(_best_of(run), 4)}


def bench_paper_example() -> dict:
    """The section 4.4 worked-example script, stdout discarded."""
    script = REPO_ROOT / "examples" / "paper_example.py"

    def run():
        with contextlib.redirect_stdout(io.StringIO()):
            runpy.run_path(str(script), run_name="__main__")

    return {"seconds": round(_best_of(run), 4)}


def main() -> None:
    report = {
        "bench": "PR1 perf harness",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "knobs": {
            "REPRO_BENCH_SEEDS": N_SEEDS,
            "REPRO_BENCH_SIM_TIME": SIM_TIME,
            "REPRO_PERF_REPEATS": REPEATS,
        },
        "workloads": {},
    }
    t0 = time.perf_counter()
    print("timing table1 sim (fast vs slow path)...")
    report["workloads"]["table1_sim"] = bench_table_sim("table1", 20, 1)
    print("timing table5 sim (fast vs slow path)...")
    report["workloads"]["table5_sim"] = bench_table_sim("table5", 60, 15)
    print("timing 60-stream feasibility analysis...")
    report["workloads"]["feasibility_60"] = bench_feasibility_60()
    print("timing paper worked example...")
    report["workloads"]["paper_example"] = bench_paper_example()
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {OUT_PATH}]")


if __name__ == "__main__":
    main()
