#!/usr/bin/env python
"""Fleet scaling benchmark: aggregate admission throughput vs shards.

Writes ``BENCH_PR9.json`` at the repo root. The workload is a 4-tenant
admit/release churn (the same seeded ``churn_spec`` policy as ``repro
load``) on a 10x10 mesh, held around a per-tenant live target where
admission decisions are non-trivial. Five legs:

``single_broker``
    The pre-fleet deployment: one engine holds *all four tenants'*
    streams in one admitted set. Every admit pays the analysis over the
    union — the cost the fleet exists to shed.

``fleet``
    The same per-tenant schedules through :class:`repro.fleet.shards.
    Fleet` at 1, 2 and 4 shards per tenant. Before any number is
    recorded, every tenant's final fingerprint must be identical across
    all shard counts (sharding must not change the verdicts it is
    making faster). The headline ``speedup_4_shards`` is
    ``fleet[shards=4].ops_per_second / single_broker.ops_per_second``.

``fleet_persistent``
    The 4-shard in-process fleet with journaling on (a ``state_dir``)
    and rids attached — the apples-to-apples baseline for the worker
    pool, which cannot run without durability.

``workers``
    The same churn through ``Fleet(..., workers=N)`` at 1, 2 and 4
    worker processes, one driver thread per tenant (cross-tenant
    parallelism is what the pool provides; each tenant stays
    single-writer). Fingerprints must match the in-process legs
    exactly. Ratios are recorded against both the PR 8 in-process
    4-shard leg and the persistent baseline. On a single-core host the
    extra processes cannot win — the floor below is therefore
    env-gated, for CI runners with real cores.

``gateway``
    The 4-shard fleet behind the real asyncio HTTP gateway on loopback,
    driven by :class:`repro.fleet.client.GatewayClient`; records ops/s
    and per-op p50/p99 latency, plus the p99 delta over the in-process
    4-shard leg (what HTTP + auth + the event loop cost).

Environment knobs:

* ``REPRO_BENCH_FLEET_OPS``    — churn ops per tenant (default 250);
* ``REPRO_BENCH_FLEET_LIVE``   — per-tenant live target (default 30);
* ``REPRO_BENCH_GATEWAY``      — 0 skips the HTTP gateway leg;
* ``REPRO_BENCH_WORKERS``      — 0 skips the worker-pool legs;
* ``REPRO_PERF_REPEATS``       — timing repeats, best-of (default 1);
* ``REPRO_BENCH_FLEET_MIN_SPEEDUP`` — when set, fail unless
  ``speedup_4_shards`` reaches this floor (CI's regression guard);
* ``REPRO_BENCH_WORKERS_MIN_RATIO`` — when set, fail unless the best
  worker leg reaches this ratio of the persistent in-process leg
  (only meaningful on multi-core runners).

Run:  python benchmarks/perf/run_fleet.py
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import random
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro.faults.campaign import ScheduledOp, _apply_outcome, build_request  # noqa: E402
from repro.fleet.client import GatewayClient  # noqa: E402
from repro.fleet.gateway import GatewayServer  # noqa: E402
from repro.fleet.shards import Fleet, TenantSpec  # noqa: E402
from repro.service.host import EngineHost  # noqa: E402
from repro.service.loadgen import churn_spec  # noqa: E402

OPS = int(os.environ.get("REPRO_BENCH_FLEET_OPS", "250"))
TARGET_LIVE = int(os.environ.get("REPRO_BENCH_FLEET_LIVE", "30"))
RUN_GATEWAY = os.environ.get("REPRO_BENCH_GATEWAY", "1") != "0"
RUN_WORKERS = os.environ.get("REPRO_BENCH_WORKERS", "1") != "0"
REPEATS = int(os.environ.get("REPRO_PERF_REPEATS", "1"))
MIN_SPEEDUP = os.environ.get("REPRO_BENCH_FLEET_MIN_SPEEDUP", "").strip()
MIN_WORKER_RATIO = os.environ.get(
    "REPRO_BENCH_WORKERS_MIN_RATIO", ""
).strip()
OUT_PATH = REPO_ROOT / "BENCH_PR9.json"

TENANTS = 4
TOPO = {"type": "mesh", "width": 10, "height": 10}
NODES = 100
LEVELS = 15
SEED = 0


def build_schedules():
    """One interleaved (tenant, ScheduledOp) timeline, seeded."""
    rng = random.Random(SEED)
    schedule = []
    for i in range(OPS * TENANTS):
        tenant = f"tenant-{i % TENANTS}"
        schedule.append((tenant, ScheduledOp(
            index=i,
            rid=f"b{SEED}-{i}",
            bias=rng.random(),
            pick=rng.random(),
            spec=churn_spec(rng, NODES, priority_levels=LEVELS),
        )))
    return schedule


def replay_single_broker(schedule):
    """All four tenants through ONE engine (the pre-fleet baseline)."""
    host = EngineHost(TOPO)
    live = {f"tenant-{i}": [] for i in range(TENANTS)}
    admits = 0
    t0 = time.perf_counter()
    for tenant, entry in schedule:
        request = build_request(entry, live[tenant],
                                target_live=TARGET_LIVE)
        request.pop("rid", None)  # no persistence: rids are dead weight
        response = host.handle_request(request)
        if not response.get("ok"):
            raise RuntimeError(f"baseline op failed: {response}")
        if request["op"] == "admit":
            admits += 1
        _apply_outcome(request, response, live[tenant], [])
    seconds = time.perf_counter() - t0
    return seconds, admits


def replay_fleet(schedule, shards):
    """The same schedules through a sharded fleet; returns fingerprints
    so the shard counts can be proven verdict-identical."""
    fleet = Fleet(
        [TenantSpec(f"tenant-{i}", f"key-{i}", TOPO)
         for i in range(TENANTS)],
        shards=shards,
    )
    live = {f"tenant-{i}": [] for i in range(TENANTS)}
    admits = 0
    t0 = time.perf_counter()
    for tenant, entry in schedule:
        request = build_request(entry, live[tenant],
                                target_live=TARGET_LIVE)
        request.pop("rid", None)
        response = fleet.handle_request(tenant, request)
        if not response.get("ok"):
            raise RuntimeError(f"fleet op failed ({shards} shards): "
                               f"{response}")
        if request["op"] == "admit":
            admits += 1
        _apply_outcome(request, response, live[tenant], [])
    seconds = time.perf_counter() - t0
    shas = {t: tf.fingerprint()[0] for t, tf in fleet.tenants.items()}
    spread = {t: len(set(tf.owner.values())) for t, tf in
              fleet.tenants.items()}
    fleet.close()
    return seconds, admits, shas, spread


def replay_persistent_fleet(schedule, state_dir):
    """The 4-shard fleet with journaling on, single driver thread —
    the apples-to-apples baseline for the worker pool."""
    fleet = Fleet(
        [TenantSpec(f"tenant-{i}", f"key-{i}", TOPO)
         for i in range(TENANTS)],
        shards=4, state_dir=state_dir,
    )
    live = {f"tenant-{i}": [] for i in range(TENANTS)}
    t0 = time.perf_counter()
    for tenant, entry in schedule:
        request = build_request(entry, live[tenant],
                                target_live=TARGET_LIVE)
        response = fleet.handle_request(tenant, request)
        if not response.get("ok"):
            raise RuntimeError(f"persistent fleet op failed: {response}")
        _apply_outcome(request, response, live[tenant], [])
    seconds = time.perf_counter() - t0
    shas = {t: tf.fingerprint()[0] for t, tf in fleet.tenants.items()}
    fleet.close()
    return seconds, shas


def replay_workers(schedule, workers, state_dir):
    """The same churn through supervised worker processes, one driver
    thread per tenant (tenants stay single-writer; the pool's win is
    cross-tenant parallelism across cores)."""
    fleet = Fleet(
        [TenantSpec(f"tenant-{i}", f"key-{i}", TOPO)
         for i in range(TENANTS)],
        shards=4, state_dir=state_dir, workers=workers,
    )
    per_tenant = {f"tenant-{i}": [] for i in range(TENANTS)}
    for tenant, entry in schedule:
        per_tenant[tenant].append(entry)
    live = {t: [] for t in per_tenant}
    failures = []

    def drive(tenant):
        for entry in per_tenant[tenant]:
            request = build_request(entry, live[tenant],
                                    target_live=TARGET_LIVE)
            response = fleet.handle_request(tenant, request)
            if not response.get("ok"):
                failures.append((tenant, response))
                return
            _apply_outcome(request, response, live[tenant], [])

    threads = [threading.Thread(target=drive, args=(t,))
               for t in per_tenant]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - t0
    if failures:
        fleet.close()
        raise RuntimeError(f"worker fleet op failed ({workers} workers): "
                           f"{failures[0]}")
    shas = {t: tf.fingerprint()[0] for t, tf in fleet.tenants.items()}
    fleet.close()
    return seconds, shas


def bench_gateway(schedule):
    """The 4-shard fleet behind the real HTTP gateway on loopback."""
    fleet = Fleet(
        [TenantSpec(f"tenant-{i}", f"key-{i}", TOPO)
         for i in range(TENANTS)],
        shards=4,
    )
    gw = GatewayServer(fleet)
    result = {}

    def drive(port):
        clients = {
            f"tenant-{i}": GatewayClient(f"127.0.0.1:{port}",
                                         api_key=f"key-{i}")
            for i in range(TENANTS)
        }
        live = {t: [] for t in clients}
        latencies = []
        t0 = time.perf_counter()
        for tenant, entry in schedule:
            request = build_request(entry, live[tenant],
                                    target_live=TARGET_LIVE)
            request.pop("rid", None)
            op = request.pop("op")
            t1 = time.perf_counter()
            response = clients[tenant].request(op, **request)
            latencies.append(time.perf_counter() - t1)
            if not response.get("ok"):
                raise RuntimeError(f"gateway op failed: {response}")
            request["op"] = op
            _apply_outcome(request, response, live[tenant], [])
        seconds = time.perf_counter() - t0
        result["seconds"] = seconds
        result["latencies"] = latencies
        clients["tenant-0"].request("shutdown")
        for c in clients.values():
            c.close()

    async def main():
        await gw.start("127.0.0.1", 0)
        thread = threading.Thread(target=drive, args=(gw.port,))
        thread.start()
        await gw.serve_forever()
        thread.join(timeout=30)

    asyncio.run(main())
    lat = sorted(result["latencies"])

    def pct(q):
        return lat[min(len(lat) - 1, int(q * len(lat)))] * 1000.0

    return {
        "ops": len(schedule),
        "seconds": round(result["seconds"], 3),
        "ops_per_second": round(len(schedule) / result["seconds"], 1),
        "latency_ms": {
            "p50": round(pct(0.50), 3),
            "p99": round(pct(0.99), 3),
            "mean": round(statistics.mean(lat) * 1000.0, 3),
        },
    }


def main() -> int:
    schedule = build_schedules()
    total_ops = len(schedule)
    out = {
        "workload": {
            "tenants": TENANTS,
            "ops_per_tenant": OPS,
            "total_ops": total_ops,
            "target_live_per_tenant": TARGET_LIVE,
            "topology": TOPO,
            "priority_levels": LEVELS,
            "seed": SEED,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }

    best = float("inf")
    admits = 0
    for _ in range(max(1, REPEATS)):
        sec, admits = replay_single_broker(schedule)
        best = min(best, sec)
    single_ops_s = total_ops / best
    out["single_broker"] = {
        "seconds": round(best, 3),
        "admits": admits,
        "ops_per_second": round(single_ops_s, 1),
        "admits_per_second": round(admits / best, 1),
    }
    print(f"single broker: {total_ops} ops in {best:.2f}s "
          f"({single_ops_s:.0f} ops/s)")

    fleet_rows = {}
    reference_shas = None
    for shards in (1, 2, 4):
        best = float("inf")
        shas = spread = None
        for _ in range(max(1, REPEATS)):
            sec, admits, shas, spread = replay_fleet(schedule, shards)
            best = min(best, sec)
        if reference_shas is None:
            reference_shas = shas
        elif shas != reference_shas:
            print(f"FAIL: verdicts diverged at {shards} shards",
                  file=sys.stderr)
            return 1
        ops_s = total_ops / best
        fleet_rows[str(shards)] = {
            "seconds": round(best, 3),
            "admits": admits,
            "ops_per_second": round(ops_s, 1),
            "admits_per_second": round(admits / best, 1),
            "speedup_vs_single_broker": round(ops_s / single_ops_s, 2),
            "max_shards_used": max(spread.values()),
        }
        print(f"fleet x{shards}: {total_ops} ops in {best:.2f}s "
              f"({ops_s:.0f} ops/s, "
              f"{ops_s / single_ops_s:.2f}x single broker)")
    out["fleet"] = fleet_rows
    out["fingerprints_identical_across_shard_counts"] = True
    speedup = fleet_rows["4"]["speedup_vs_single_broker"]
    out["speedup_4_shards"] = speedup

    worker_ratio = None
    if RUN_WORKERS:
        tmp_root = tempfile.mkdtemp(prefix="repro-bench-fleet-")
        try:
            best = float("inf")
            pshas = None
            for r in range(max(1, REPEATS)):
                sec, pshas = replay_persistent_fleet(
                    schedule, Path(tmp_root) / f"persistent-{r}"
                )
                best = min(best, sec)
            if pshas != reference_shas:
                print("FAIL: persistent fleet verdicts diverged",
                      file=sys.stderr)
                return 1
            persistent_ops_s = total_ops / best
            out["fleet_persistent"] = {
                "seconds": round(best, 3),
                "ops_per_second": round(persistent_ops_s, 1),
                "journal_overhead_vs_inmemory": round(
                    fleet_rows["4"]["ops_per_second"] / persistent_ops_s,
                    2,
                ),
            }
            print(f"fleet x4 (journaled): {total_ops} ops in {best:.2f}s "
                  f"({persistent_ops_s:.0f} ops/s)")

            worker_rows = {}
            for workers in (1, 2, 4):
                best = float("inf")
                wshas = None
                for r in range(max(1, REPEATS)):
                    sec, wshas = replay_workers(
                        schedule, workers,
                        Path(tmp_root) / f"workers-{workers}-{r}",
                    )
                    best = min(best, sec)
                if wshas != reference_shas:
                    print(f"FAIL: verdicts diverged at {workers} workers",
                          file=sys.stderr)
                    return 1
                ops_s = total_ops / best
                ratio = ops_s / persistent_ops_s
                worker_rows[str(workers)] = {
                    "seconds": round(best, 3),
                    "ops_per_second": round(ops_s, 1),
                    "ratio_vs_inprocess_persistent": round(ratio, 2),
                    "ratio_vs_inprocess_4shards": round(
                        ops_s / fleet_rows["4"]["ops_per_second"], 2
                    ),
                }
                print(f"workers x{workers}: {total_ops} ops in "
                      f"{best:.2f}s ({ops_s:.0f} ops/s, {ratio:.2f}x "
                      f"journaled in-process)")
            out["workers"] = worker_rows
            out["fingerprints_identical_across_worker_counts"] = True
            worker_ratio = max(
                row["ratio_vs_inprocess_persistent"]
                for row in worker_rows.values()
            )
            out["best_worker_ratio"] = worker_ratio
        finally:
            shutil.rmtree(tmp_root, ignore_errors=True)

    if RUN_GATEWAY:
        gw = bench_gateway(schedule)
        inproc_ms = (fleet_rows["4"]["seconds"] / total_ops) * 1000.0
        gw["p99_delta_ms_vs_inprocess"] = round(
            gw["latency_ms"]["p99"] - inproc_ms, 3
        )
        out["gateway"] = gw
        print(f"gateway x4: {gw['ops_per_second']:.0f} ops/s, "
              f"p99 {gw['latency_ms']['p99']:.2f}ms "
              f"(+{gw['p99_delta_ms_vs_inprocess']:.2f}ms vs in-process)")

    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if MIN_SPEEDUP and speedup < float(MIN_SPEEDUP):
        print(f"FAIL: speedup_4_shards {speedup:.2f} is below the "
              f"REPRO_BENCH_FLEET_MIN_SPEEDUP={MIN_SPEEDUP} floor",
              file=sys.stderr)
        return 1
    if (MIN_WORKER_RATIO and worker_ratio is not None
            and worker_ratio < float(MIN_WORKER_RATIO)):
        print(f"FAIL: best worker ratio {worker_ratio:.2f} is below the "
              f"REPRO_BENCH_WORKERS_MIN_RATIO={MIN_WORKER_RATIO} floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
