"""Performance regression harness (see :mod:`benchmarks.perf.run_perf`).

Unlike the table benchmarks (which regenerate paper artifacts and are
timed incidentally by pytest-benchmark), this package times the canonical
workloads directly and records the numbers to ``BENCH_PR1.json`` at the
repo root, so simulator-speed regressions show up as a diff, not a
feeling.
"""
