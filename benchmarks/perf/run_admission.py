#!/usr/bin/env python
"""Admission-churn benchmark: incremental engine vs full reanalysis.

Writes ``BENCH_PR6.json`` at the repo root. Three workloads are measured:

``churn_60``
    A 60-stream admit/release churn trace on a 12x12 mesh with 15
    priority levels: the trace first fills to 60 admitted streams, then
    alternates random releases and admissions around that occupancy
    (ISSUE 3's acceptance workload). The identical trace is replayed
    through :class:`~repro.service.engine.IncrementalAdmissionEngine` in
    incremental mode and in full mode (``REPRO_INCREMENTAL=0``
    equivalent); every decision and every report must be bit-identical
    between the two before any number is recorded, and the recorded
    ``speedup`` is their wall-time ratio.
``metrics_overhead``
    Microbenchmark of :meth:`~repro.service.metrics.ServiceMetrics.
    record_op` — the per-request metrics cost — with a hard 5 µs/op
    guard on both the count-only (``REPRO_SERVICE_TIMING=0``) and the
    histogram-recording path.
``server_roundtrip``
    End-to-end ops/sec of the asyncio broker over a unix socket
    (``repro serve`` + the churn load client), incremental engine. Two
    legs against fresh servers: a classic closed loop (``pipeline=1``,
    reported as ``serial_ops_per_second``) and a pipelined client that
    keeps ``REPRO_BENCH_PIPELINE`` requests in flight so the server's
    batching worker is never starved (the headline ``ops_per_second``).

Environment knobs:

* ``REPRO_BENCH_ADMIT_OPS``    — churn ops after the fill phase (default 150);
* ``REPRO_BENCH_ADMIT_STREAMS``— target live streams (default 60);
* ``REPRO_PERF_REPEATS``       — timing repeats, best-of (default 1);
* ``REPRO_BENCH_SERVER``       — 0 skips the server round-trip leg;
* ``REPRO_BENCH_PIPELINE``     — in-flight depth of the pipelined leg
  (default 4 — the sweep peak on a single-core host, where client and
  server share the interpreter and deeper pipelines only grow queues);
* ``REPRO_BENCH_MIN_OPS``      — when set, fail unless the headline
  ``server_roundtrip.ops_per_second`` reaches this floor (CI's
  perf-regression guard).

Run:  PYTHONPATH=src python benchmarks/perf/run_admission.py
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro.core.streams import MessageStream  # noqa: E402
from repro.io import report_to_spec  # noqa: E402
from repro.service.engine import IncrementalAdmissionEngine  # noqa: E402
from repro.topology.mesh import Mesh2D  # noqa: E402
from repro.topology.route_table import clear_shared_route_tables  # noqa: E402
from repro.topology.routing import XYRouting  # noqa: E402

CHURN_OPS = int(os.environ.get("REPRO_BENCH_ADMIT_OPS", "150"))
TARGET_LIVE = int(os.environ.get("REPRO_BENCH_ADMIT_STREAMS", "60"))
REPEATS = int(os.environ.get("REPRO_PERF_REPEATS", "1"))
RUN_SERVER = os.environ.get("REPRO_BENCH_SERVER", "1") != "0"
PIPELINE = int(os.environ.get("REPRO_BENCH_PIPELINE", "4"))
MIN_OPS = os.environ.get("REPRO_BENCH_MIN_OPS", "").strip()
OUT_PATH = REPO_ROOT / "BENCH_PR6.json"

MESH_W = MESH_H = 12
LEVELS = 15


def build_trace(seed: int = 0):
    """Build a deterministic admit/release trace (shared by both engines).

    Each element is ``("admit", MessageStream)`` or ``("release", id)``.
    Streams are locality-biased (short routes) so HP closures stay
    realistic for a large network — the regime the broker targets.
    """
    mesh = Mesh2D(MESH_W, MESH_H)
    rng = random.Random(seed)

    def draw(sid: int) -> MessageStream:
        while True:
            sx, sy = rng.randrange(MESH_W), rng.randrange(MESH_H)
            dx = min(MESH_W - 1, max(0, sx + rng.randint(-4, 4)))
            dy = min(MESH_H - 1, max(0, sy + rng.randint(-4, 4)))
            if (sx, sy) != (dx, dy):
                break
        length = rng.randint(1, 10)
        period = rng.randint(80, 400)
        return MessageStream(
            sid, mesh.node_xy(sx, sy), mesh.node_xy(dx, dy),
            priority=rng.randint(1, LEVELS), period=period, length=length,
            deadline=rng.randint(period // 5, period // 2),
        )

    trace = []
    live = []
    next_id = 0
    # Fill to the target occupancy, then churn around it.
    for _ in range(TARGET_LIVE):
        trace.append(("admit", draw(next_id)))
        live.append(next_id)
        next_id += 1
    for _ in range(CHURN_OPS):
        if live and (len(live) >= TARGET_LIVE or rng.random() < 0.5):
            sid = live.pop(rng.randrange(len(live)))
            trace.append(("release", sid))
        else:
            trace.append(("admit", draw(next_id)))
            live.append(next_id)
            next_id += 1
    return trace


def replay(trace, incremental: bool):
    """Run one engine over the trace; return (seconds, outcomes, stats).

    Outcomes capture every decision and every post-op report spec, so the
    two modes can be compared bit for bit.
    """
    mesh = Mesh2D(MESH_W, MESH_H)
    # Start from a cold shared route table so route_cache_misses measures
    # honest first-lookup work (and its distinct-pairs ceiling holds).
    clear_shared_route_tables()
    engine = IncrementalAdmissionEngine(
        XYRouting(mesh), incremental=incremental
    )
    raw = []
    t0 = time.perf_counter()
    for op, payload in trace:
        if op == "admit":
            decision = engine.try_admit(payload)
            raw.append(("admit", payload.stream_id, decision, None))
        else:
            # The trace releases only streams it admitted; a rejected
            # admit makes the later release a no-op we must skip on both
            # engines identically.
            if payload in engine.admitted:
                engine.release(payload)
                # The report must be captured *here* (later ops change
                # the state), so its construction stays timed — only the
                # spec-ification below is deferred.
                raw.append(("release", payload, None,
                            engine.current_report()))
            else:
                raw.append(("skip", payload, None, None))
    seconds = time.perf_counter() - t0
    # Turning reports into comparable specs is harness bookkeeping, not
    # engine work: it costs the same on both paths and would otherwise
    # dilute the measured ratio.
    outcomes = []
    for kind, key, decision, report in raw:
        if kind == "admit":
            outcomes.append(
                ("admit", key, decision.admitted, decision.violations,
                 report_to_spec(decision.report))
            )
        elif kind == "release":
            outcomes.append(("release", key, report_to_spec(report)))
        else:
            outcomes.append(("skip", key))
    return seconds, outcomes, engine.stats


def bench_churn() -> dict:
    trace = build_trace()
    best_inc = best_full = float("inf")
    outcomes_inc = outcomes_full = None
    stats = None
    for _ in range(max(1, REPEATS)):
        sec, out, st = replay(trace, incremental=True)
        if sec < best_inc:
            best_inc, outcomes_inc, stats = sec, out, st
        sec, out, _ = replay(trace, incremental=False)
        if sec < best_full:
            best_full, outcomes_full = sec, out
    if outcomes_inc != outcomes_full:
        raise AssertionError(
            "incremental and full engines diverged on the churn trace — "
            "refusing to record timings for a broken engine"
        )
    admits = sum(1 for o in outcomes_inc if o[0] == "admit")
    distinct_pairs = len({
        (payload.src, payload.dst)
        for op, payload in trace if op == "admit"
    })
    st = stats.to_dict()
    if st["route_cache_misses"] > distinct_pairs:
        raise AssertionError(
            f"route table recomputed more routes "
            f"({st['route_cache_misses']}) than distinct (src, dst) pairs "
            f"in the trace ({distinct_pairs}) — memoization is broken"
        )
    return {
        "mesh": f"{MESH_W}x{MESH_H}",
        "priority_levels": LEVELS,
        "target_live_streams": TARGET_LIVE,
        "ops": len(trace),
        "admits": admits,
        "accepted": sum(
            1 for o in outcomes_inc if o[0] == "admit" and o[2]
        ),
        "distinct_route_pairs": distinct_pairs,
        "incremental_seconds": round(best_inc, 4),
        "full_seconds": round(best_full, 4),
        "speedup": round(best_full / best_inc, 3),
        "phase_seconds": {
            k: st[k] for k in (
                "route_seconds", "hp_seconds", "diagram_seconds",
                "verdict_seconds",
            )
        },
        "engine_stats": st,
    }


def bench_metrics_overhead() -> dict:
    """Microbenchmark the per-request metrics cost (``record_op``).

    Guards the PR 4 lazy-timing fix: counting one op without a latency
    sample (the ``REPRO_SERVICE_TIMING=0`` path) must stay well under a
    microsecond, and the full histogram-recording path must stay O(1) in
    the bucket count. The guard threshold is generous (5 µs/op) so slow
    CI machines never flake, but a reintroduced per-sample bound scan or
    eager registry sync would blow straight through it.
    """
    from repro.service.metrics import ServiceMetrics

    n = 200_000
    best = {"count_only": float("inf"), "with_latency": float("inf")}
    for _ in range(max(1, REPEATS) + 1):
        m = ServiceMetrics(timing=False)
        t0 = time.perf_counter()
        for _ in range(n):
            m.record_op("admit")
        best["count_only"] = min(best["count_only"],
                                 time.perf_counter() - t0)

        m = ServiceMetrics(timing=True)
        t0 = time.perf_counter()
        for _ in range(n):
            m.record_op("admit", 0.000123)
        best["with_latency"] = min(best["with_latency"],
                                   time.perf_counter() - t0)
    out = {"samples": n}
    for name, sec in best.items():
        us = sec / n * 1e6
        out[f"{name}_us_per_op"] = round(us, 4)
        if us > 5.0:
            raise AssertionError(
                f"record_op ({name}) costs {us:.2f} us/op — the metrics "
                "hot path regressed past the 5 us guard"
            )
    return out


def _server_leg(pipeline: int) -> dict:
    """One round-trip measurement against a fresh server.

    Every leg gets its own broker (state accumulates over a run, so a
    shared server would hand later legs a slower engine) and its own
    unix socket.
    """
    import asyncio
    import tempfile
    import threading

    from repro.service.loadgen import BrokerClient, run_load
    from repro.service.server import BrokerServer

    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "broker.sock")
        result: dict = {}

        async def main() -> None:
            server = BrokerServer(
                {"type": "mesh", "width": MESH_W, "height": MESH_H}
            )
            await server.start_unix(sock)

            def client_side() -> None:
                with BrokerClient.wait_for_unix(sock) as client:
                    summary = run_load(
                        client, ops=max(100, CHURN_OPS), seed=0,
                        target_live=min(40, TARGET_LIVE),
                        pipeline=pipeline,
                    )
                    result.update({
                        "ops": summary.ops,
                        "pipeline": summary.pipeline,
                        "ops_per_second": round(
                            summary.ops_per_second(), 1
                        ),
                        "acceptance_rate": round(
                            summary.admits_accepted
                            / max(1, summary.admits_tried), 3
                        ),
                    })
                    client.check("shutdown")

            thread = threading.Thread(target=client_side)
            thread.start()
            await server.serve_forever()
            thread.join()

        asyncio.run(main())
        return result


def bench_server_roundtrip() -> dict:
    serial = _server_leg(1)
    pipelined = _server_leg(max(1, PIPELINE))
    # Headline = the pipelined leg; the closed loop rides along so the
    # per-request latency story stays visible next to the throughput one.
    out = dict(pipelined)
    out["serial_ops_per_second"] = serial["ops_per_second"]
    out["serial_acceptance_rate"] = serial["acceptance_rate"]
    if MIN_OPS:
        floor = float(MIN_OPS)
        if out["ops_per_second"] < floor:
            raise AssertionError(
                f"server round-trip throughput regressed: "
                f"{out['ops_per_second']} ops/s is below the "
                f"REPRO_BENCH_MIN_OPS floor of {floor}"
            )
    return out


def main() -> None:
    report = {
        "bench": "PR6 admission fast-path harness",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "knobs": {
            "REPRO_BENCH_ADMIT_OPS": CHURN_OPS,
            "REPRO_BENCH_ADMIT_STREAMS": TARGET_LIVE,
            "REPRO_PERF_REPEATS": REPEATS,
            "REPRO_BENCH_PIPELINE": PIPELINE,
            "REPRO_KERNEL": os.environ.get("REPRO_KERNEL", "numpy"),
            "REPRO_INCREMENTAL_HP": os.environ.get(
                "REPRO_INCREMENTAL_HP", "1"
            ),
            "REPRO_ANALYSIS_PROCS": os.environ.get(
                "REPRO_ANALYSIS_PROCS", ""
            ),
        },
        "workloads": {},
    }
    t0 = time.perf_counter()
    print(f"replaying {TARGET_LIVE}-stream churn trace "
          "(incremental vs full)...")
    report["workloads"]["churn_60"] = bench_churn()
    print("microbenchmarking metrics hot path (record_op)...")
    report["workloads"]["metrics_overhead"] = bench_metrics_overhead()
    if RUN_SERVER:
        print("timing broker server round-trips (unix socket)...")
        report["workloads"]["server_roundtrip"] = bench_server_roundtrip()
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {OUT_PATH}]")


if __name__ == "__main__":
    main()
