#!/usr/bin/env python
"""Cross-backend admission-rate benchmark on the churn workload.

Writes ``BENCH_PR7.json`` at the repo root. One workload, every
registered bound backend:

``backend_churn``
    A deterministic admit/release churn trace on a 12x12 mesh is replayed
    once per registered analysis backend (``kim98``, ``tighter``,
    ``buffered``, ...) through
    :class:`~repro.service.engine.IncrementalAdmissionEngine` with that
    backend as the engine default. The workload pairs each *bulk*
    transfer (long period, tight-ish deadline) with a same-priority
    *monitor* heartbeat that crosses the bulk's final channel — the
    regime where Kim98's one-instance-per-equal-priority-member charge is
    pessimistic: the heartbeat has many period windows inside the bulk's
    horizon, and the FCFS equal-priority cap (the ``tighter`` backend)
    discharges all but the ones that can actually interfere. Recorded per
    backend: accepted/rejected admit trials, admission rate, and
    replay wall time.

The run *asserts* the expected dominance ordering on the trace's
per-decision outcomes (same trial set per decision is not guaranteed
along a churn trace, so the ordering is asserted on aggregate counts for
the pinned seed):

* ``tighter`` accepts strictly more admits than ``kim98`` (the refinement
  must buy real admission capacity on this workload), and
* ``buffered`` accepts no more than ``kim98`` (an interference margin can
  only shrink the schedulable region).

Environment knobs:

* ``REPRO_BENCH_ADMIT_OPS``     — churn ops after the fill phase (default 150);
* ``REPRO_BENCH_ADMIT_STREAMS`` — target live streams (default 60);
* ``REPRO_BENCH_SEED``          — trace seed (default 0; the dominance
  assertion is only enforced for the default seed/ops/target, where the
  separation has been verified);
* ``REPRO_PERF_REPEATS``        — timing repeats, best-of (default 1).

Run:  PYTHONPATH=src python benchmarks/perf/run_backends.py
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro.core import backends as bound_backends  # noqa: E402
from repro.core.streams import MessageStream  # noqa: E402
from repro.service.engine import IncrementalAdmissionEngine  # noqa: E402
from repro.topology.mesh import Mesh2D  # noqa: E402
from repro.topology.route_table import clear_shared_route_tables  # noqa: E402
from repro.topology.routing import XYRouting  # noqa: E402

CHURN_OPS = int(os.environ.get("REPRO_BENCH_ADMIT_OPS", "150"))
TARGET_LIVE = int(os.environ.get("REPRO_BENCH_ADMIT_STREAMS", "60"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
REPEATS = int(os.environ.get("REPRO_PERF_REPEATS", "1"))
OUT_PATH = REPO_ROOT / "BENCH_PR7.json"

MESH_W = MESH_H = 12
LEVELS = 12

#: The dominance assertion is pinned to the verified default workload.
DEFAULT_WORKLOAD = (SEED == 0 and CHURN_OPS == 150 and TARGET_LIVE == 60)


def build_trace(seed: int):
    """Deterministic paired bulk+monitor admit/release churn trace.

    Each admitted *pair* is a bulk transfer plus a same-priority monitor
    heartbeat crossing the bulk's last XY-routing channel (monitors
    source at the penultimate node of the bulk's path). The monitor's
    short period puts many of its instances inside the bulk's deadline
    horizon — exactly the shape where the FCFS equal-priority instance
    cap separates ``tighter`` from ``kim98``.
    """
    mesh = Mesh2D(MESH_W, MESH_H)
    rng = random.Random(seed)

    def draw_pair(nid):
        while True:
            sx, sy = rng.randrange(MESH_W), rng.randrange(MESH_H)
            if rng.random() < 0.5:
                # Half the bulks aim at the mesh centre: a mild hotspot
                # keeps channel sharing (and hence HP sets) non-trivial.
                dx, dy = rng.randint(4, 7), rng.randint(4, 7)
            else:
                dx = min(MESH_W - 1, max(0, sx + rng.randint(-5, 5)))
                dy = min(MESH_H - 1, max(0, sy + rng.randint(-5, 5)))
            if (sx, sy) != (dx, dy):
                break
        pr = rng.randint(1, LEVELS)
        length = rng.randint(4, 10)
        period = rng.randint(240, 600)
        hops = abs(dx - sx) + abs(dy - sy)
        latency = hops + length - 1
        bulk = MessageStream(
            nid + 1, mesh.node_xy(sx, sy), mesh.node_xy(dx, dy),
            priority=pr, period=period, length=length,
            deadline=min(latency + rng.randint(20, 100), period),
        )
        # Penultimate node of the bulk's XY route (y-leg last unless the
        # route is x-only): the monitor crosses only the final channel.
        if dy != sy:
            px, py = dx, dy - (1 if dy > sy else -1)
        else:
            px, py = dx - (1 if dx > sx else -1), dy
        mperiod = rng.randint(24, 40)
        mon = MessageStream(
            nid, mesh.node_xy(px, py), mesh.node_xy(dx, dy),
            priority=pr, period=mperiod, length=rng.randint(2, 4),
            deadline=mperiod,
        )
        return [mon, bulk]

    trace, live, nid = [], [], 0

    def admit_pair():
        nonlocal nid
        for s in draw_pair(nid):
            trace.append(("admit", s))
            live.append(s.stream_id)
        nid += 2

    while len(live) < TARGET_LIVE:
        admit_pair()
    for _ in range(CHURN_OPS):
        if live and (len(live) >= TARGET_LIVE or rng.random() < 0.5):
            trace.append(("release", live.pop(rng.randrange(len(live)))))
        else:
            admit_pair()
    return trace


def replay(trace, backend: str):
    """Replay the trace with ``backend`` as the engine default.

    Returns ``(seconds, accepted, rejected, decisions)`` where decisions
    is the per-admit accept/reject bit-vector (for cross-backend
    comparison in the report).
    """
    mesh = Mesh2D(MESH_W, MESH_H)
    clear_shared_route_tables()
    engine = IncrementalAdmissionEngine(XYRouting(mesh), analysis=backend)
    decisions = []
    accepted = rejected = 0
    t0 = time.perf_counter()
    for op, payload in trace:
        if op == "admit":
            decision = engine.try_admit(payload)
            decisions.append(1 if decision.admitted else 0)
            if decision.admitted:
                accepted += 1
            else:
                rejected += 1
        elif payload in engine.admitted:
            engine.release(payload)
    seconds = time.perf_counter() - t0
    return seconds, accepted, rejected, decisions


def bench_backends() -> dict:
    trace = build_trace(SEED)
    admits = sum(1 for op, _ in trace if op == "admit")
    per_backend: dict = {}
    decision_vectors: dict = {}
    for name in bound_backends.names():
        backend = bound_backends.get(name)
        best = float("inf")
        accepted = rejected = 0
        decisions = None
        for _ in range(max(1, REPEATS)):
            sec, acc, rej, dec = replay(trace, name)
            if decisions is not None and dec != decisions:
                raise AssertionError(
                    f"backend {name} made different decisions across "
                    "repeats of the identical trace"
                )
            best, accepted, rejected, decisions = (
                min(best, sec), acc, rej, dec
            )
        decision_vectors[name] = decisions
        per_backend[name] = {
            "summary": backend.summary,
            "citation": backend.citation,
            "refines": backend.refines,
            "accepted": accepted,
            "rejected": rejected,
            "admission_rate": round(accepted / max(1, admits), 4),
            "replay_seconds": round(best, 4),
        }

    if DEFAULT_WORKLOAD and {"kim98", "tighter", "buffered"} <= set(
        per_backend
    ):
        k = per_backend["kim98"]["accepted"]
        t = per_backend["tighter"]["accepted"]
        b = per_backend["buffered"]["accepted"]
        if not t > k:
            raise AssertionError(
                f"tighter accepted {t} <= kim98 {k} on the pinned churn "
                "workload — the refinement stopped buying admission "
                "capacity"
            )
        if not b <= k:
            raise AssertionError(
                f"buffered accepted {b} > kim98 {k} — an interference "
                "margin must not grow the schedulable region"
            )
    return {
        "mesh": f"{MESH_W}x{MESH_H}",
        "priority_levels": LEVELS,
        "target_live_streams": TARGET_LIVE,
        "seed": SEED,
        "ops": len(trace),
        "admit_trials": admits,
        "workload": "paired bulk+monitor churn (monitor crosses the "
                    "bulk's final channel at equal priority)",
        "dominance_asserted": DEFAULT_WORKLOAD,
        "backends": per_backend,
    }


def main() -> None:
    report = {
        "bench": "PR7 pluggable bound backends",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "knobs": {
            "REPRO_BENCH_ADMIT_OPS": CHURN_OPS,
            "REPRO_BENCH_ADMIT_STREAMS": TARGET_LIVE,
            "REPRO_BENCH_SEED": SEED,
            "REPRO_PERF_REPEATS": REPEATS,
            "REPRO_KERNEL": os.environ.get("REPRO_KERNEL", "numpy"),
        },
        "workloads": {},
    }
    t0 = time.perf_counter()
    print(f"replaying {TARGET_LIVE}-stream churn trace once per backend "
          f"({', '.join(bound_backends.names())})...")
    report["workloads"]["backend_churn"] = bench_backends()
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {OUT_PATH}]")


if __name__ == "__main__":
    main()
