"""E-T3 — paper Table 3: 4 priority levels, 20 message streams.

Paper's observation: allowing several priority levels tightens the bound,
especially for the high-priority classes."""

from benchmarks.common import (
    run_table_seeds,
    soundness_report,
    summarize_seeds,
    write_output,
)


def test_table3(benchmark):
    results = benchmark.pedantic(
        lambda: run_table_seeds("table3", num_streams=20, priority_levels=4),
        rounds=1,
        iterations=1,
    )
    text = summarize_seeds("table3", results)
    text += "\n" + soundness_report(results)

    # Shape: seed-averaged top-level ratio beats the 1-level Table 1 ratio.
    from benchmarks.common import run_table_seeds as rts

    t1 = rts("table1_ref", num_streams=20, priority_levels=1, seeds=[0])
    top4 = sum(r.highest_priority_ratio() for r in results) / len(results)
    text += (
        f"\nshape: top-priority ratio with 4 levels = {top4:.3f} vs "
        f"1 level = {t1[0].rows[1].mean:.3f}"
    )
    write_output("table3", text)
    assert top4 > t1[0].rows[1].mean
