"""E-SENS — sensitivity sweeps over the workload knobs the paper fixed.

Four response curves of the bound's tightness (actual/U ratio):

* vs the number of streams (levels at the |M|/4 rule) — expect slow decay;
* vs message size — longer worms, looser bounds;
* vs load (period scale, smaller = heavier) — heavy load saturates;
* vs mesh size at constant |M| — more room, fewer overlaps, tighter.
"""

from benchmarks.common import write_output
from repro.analysis.sensitivity import (
    format_sweep,
    sweep_mesh_size,
    sweep_message_length,
    sweep_num_streams,
    sweep_period_scale,
)

SIM_TIME = 12_000
SEEDS = (0, 1)


def test_sensitivity_sweeps(benchmark):
    def run():
        return {
            "num_streams": sweep_num_streams(
                (10, 20, 30, 40), seeds=SEEDS, sim_time=SIM_TIME
            ),
            "length": sweep_message_length(
                (0.5, 1.0, 2.0, 3.0), seeds=SEEDS, sim_time=SIM_TIME
            ),
            "period": sweep_period_scale(
                (0.25, 0.5, 1.0, 2.0), seeds=SEEDS, sim_time=SIM_TIME
            ),
            "mesh": sweep_mesh_size(
                (5, 7, 10, 14), seeds=SEEDS, sim_time=SIM_TIME
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    parts = [
        format_sweep("E-SENS/a — ratio vs |M| (levels = |M|/4)",
                     sweeps["num_streams"]),
        format_sweep("E-SENS/b — ratio vs message-length scale "
                     "(C ~ U[10,40] x scale)", sweeps["length"]),
        format_sweep("E-SENS/c — ratio vs period scale "
                     "(T ~ U[400,900] x scale; smaller = heavier load)",
                     sweeps["period"]),
        format_sweep("E-SENS/d — ratio vs mesh width (|M| = 20)",
                     sweeps["mesh"]),
    ]
    parts.append(
        "finding: at the paper's traffic density the tightness is "
        "dominated by the interference scope (mean |HP|, driven by |M|, "
        "the level count and the mesh size); message-length and period "
        "scaling barely move the ratio because both U and the measured "
        "delay scale together."
    )
    write_output("sensitivity", "\n\n".join(parts))

    # Directional shape checks (loose: two seeds of noise).
    mesh = sweeps["mesh"]
    assert mesh[-1].mean_hp_size <= mesh[0].mean_hp_size  # dilution
    num = sweeps["num_streams"]
    assert num[-1].mean_hp_size >= num[0].mean_hp_size    # crowding
    for sweep in sweeps.values():
        for p in sweep:
            assert 0.0 <= p.mean_ratio <= 1.0
            assert 0.0 <= p.top_ratio <= 1.0
