"""E-ASSIGN — priority-assignment policies under the paper's test.

The paper treats priorities as given; this benchmark measures how much the
assignment policy matters when the feasibility test is the paper's:
acceptance rate (whole workload certified) and per-stream slack under
rate-monotonic, deadline-monotonic and Audsley (oracle-driven) assignment,
plus the cost of quantising to |M|/4 levels (the paper's VC budget).
"""

import dataclasses

import numpy as np

from benchmarks.common import write_output
from repro.core.assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    group_into_levels,
    rate_monotonic_assignment,
)
from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import StreamSet
from repro.sim import PaperWorkload
from repro.topology import Mesh2D, XYRouting

N_WORKLOADS = 20
N_STREAMS = 10


def tighten(streams, rng):
    """Random deadlines in [0.15, 0.6] of the period (feasibility is
    non-trivial; D = T would accept nearly everything)."""
    out = StreamSet()
    for s in streams:
        d = max(s.length + 5, int(s.period * rng.uniform(0.15, 0.6)))
        out.add(dataclasses.replace(s, deadline=d))
    return out


def test_assignment_policies(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)

    def run():
        accept = {"rm": 0, "dm": 0, "opa": 0, "dm|M|/4": 0}
        for seed in range(N_WORKLOADS):
            rng = np.random.default_rng(1000 + seed)
            wl = PaperWorkload(num_streams=N_STREAMS, priority_levels=1,
                               seed=seed, period_range=(150, 400),
                               length_range=(10, 30))
            streams = tighten(wl.generate(mesh), rng)

            rm = rate_monotonic_assignment(streams)
            if FeasibilityAnalyzer(rm, routing).determine_feasibility().success:
                accept["rm"] += 1
            dm = deadline_monotonic_assignment(streams)
            if FeasibilityAnalyzer(dm, routing).determine_feasibility().success:
                accept["dm"] += 1
                grouped = group_into_levels(dm, max(1, N_STREAMS // 4))
                if FeasibilityAnalyzer(
                    grouped, routing
                ).determine_feasibility().success:
                    accept["dm|M|/4"] += 1
            if audsley_assignment(streams, routing) is not None:
                accept["opa"] += 1
        return accept

    accept = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"E-ASSIGN — acceptance over {N_WORKLOADS} random workloads "
        f"({N_STREAMS} streams, deadlines 0.15-0.6 T)",
        f"{'policy':>10} {'accepted':>9}",
    ]
    for k in ("rm", "dm", "opa", "dm|M|/4"):
        lines.append(f"{k:>10} {accept[k]:9d}")
    lines.append(
        "notes: OPA uses the paper's test as its oracle; the |M|/4 row "
        "quantises the DM order into the paper's level budget (accepted "
        "only counted among DM-feasible workloads). Neither DM nor OPA is "
        "provably optimal here — bounds depend on the order of streams "
        "above through blocking chains (tests/test_assignment.py)."
    )
    write_output("assignment", "\n".join(lines))

    assert accept["opa"] >= accept["dm"] - 2  # rough empirical parity
    assert accept["dm"] >= accept["rm"] - 2
    assert accept["dm|M|/4"] <= accept["dm"]