"""E-AB2 — ablation: arbitration policy and VC organisation.

The paper's scheme = per-priority VCs + preemptive priority arbitration.
This ablation swaps each ingredient on the same workload:

* preemptive priority (paper) vs FCFS vs round-robin arbitration;
* per-priority VCs vs a single VC per port (classical wormhole);
* Li & Mutka's request-downward VC allocation;
* VC buffer depth 1 vs 2 vs 4.

The metric is the mean/max latency of the top and bottom priority classes —
the paper's point being that only preemptive priority gives the top class
load-independent latency."""

import numpy as np

from benchmarks.common import write_output
from repro.sim import (
    FCFSArbiter,
    PaperWorkload,
    PriorityPreemptiveArbiter,
    RoundRobinArbiter,
    WormholeSimulator,
)
from repro.topology import Mesh2D, XYRouting

SIM_TIME = 15_000
WARMUP = 1_500


def run_config(mesh, routing, streams, *, arbiter, vc_mode="per_priority",
               vc_capacity=2):
    sim = WormholeSimulator(
        mesh, routing, streams, arbiter=arbiter, vc_mode=vc_mode,
        vc_capacity=vc_capacity, warmup=WARMUP,
    )
    stats = sim.simulate_streams(SIM_TIME)
    pooled = stats.priority_stats()
    top, bottom = max(pooled), min(pooled)
    return (
        pooled[top].mean, pooled[top].maximum,
        pooled[bottom].mean, pooled[bottom].maximum,
    )


def test_ablation_arbiter(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    wl = PaperWorkload(num_streams=20, priority_levels=4, seed=0,
                       period_range=(200, 500))
    streams = wl.generate(mesh)

    configs = [
        ("preemptive-prio (paper)", dict(arbiter=PriorityPreemptiveArbiter())),
        ("FCFS", dict(arbiter=FCFSArbiter())),
        ("round-robin", dict(arbiter=RoundRobinArbiter())),
        ("classical single-VC", dict(arbiter=PriorityPreemptiveArbiter(),
                                     vc_mode="single")),
        ("Li request-downward", dict(arbiter=PriorityPreemptiveArbiter(),
                                     vc_mode="li")),
        ("Song kill+retransmit", dict(arbiter=PriorityPreemptiveArbiter(),
                                      vc_mode="preempt_kill")),
        ("paper, VC depth 1", dict(arbiter=PriorityPreemptiveArbiter(),
                                   vc_capacity=1)),
        ("paper, VC depth 4", dict(arbiter=PriorityPreemptiveArbiter(),
                                   vc_capacity=4)),
    ]

    def run_all():
        return {
            name: run_config(mesh, routing, streams, **kw)
            for name, kw in configs
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Ablation E-AB2 — arbitration / VC organisation "
        "(20 streams, 4 levels)",
        f"{'config':<24} {'top mean':>9} {'top max':>8} "
        f"{'bottom mean':>12} {'bottom max':>11}",
    ]
    for name, (tm, tx, bm, bx) in results.items():
        lines.append(f"{name:<24} {tm:9.1f} {tx:8d} {bm:12.1f} {bx:11d}")
    lines.append(
        "expected shape: the paper's config minimises the top class's max "
        "latency; priority-oblivious and non-preemptive configs inflate it."
    )
    write_output("ablation_arbiter", "\n".join(lines))

    paper_top_max = results["preemptive-prio (paper)"][1]
    assert paper_top_max <= results["FCFS"][1]
    assert paper_top_max <= results["classical single-VC"][1]
