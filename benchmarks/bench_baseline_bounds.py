"""E-AB3 — the timing-diagram bound vs the lumped busy-window baseline.

The paper argues (related work, §1) that porting processor scheduling
analysis directly to wormhole networks is "not appropriate". This
benchmark quantifies the claim on random paper workloads by comparing
three bounds per stream:

* the paper's timing-diagram bound (with Modify_Diagram);
* the lumped busy-window fixpoint over the full HP set (safe but looser —
  it ignores window confinement);
* the busy-window fixpoint over **direct** blockers only (the naive
  transfer of processor analysis, which ignores blocking chains — and is
  therefore unsound, as the simulated delays show).
"""

import numpy as np

from benchmarks.common import write_output
from repro.core.busy_window import busy_window_bounds
from repro.core.feasibility import FeasibilityAnalyzer
from repro.sim import PaperWorkload, WormholeSimulator
from repro.topology import Mesh2D, XYRouting

MAX_HORIZON = 1 << 16


def test_baseline_bounds(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)

    def run():
        rows = []
        for seed in range(3):
            wl = PaperWorkload(num_streams=20, priority_levels=2, seed=seed,
                               period_range=(80, 160), length_range=(8, 20))
            streams = wl.generate(mesh)
            an = FeasibilityAnalyzer(streams, routing)
            diagram = an.all_upper_bounds(max_horizon=MAX_HORIZON)
            lumped = busy_window_bounds(an.streams, an.hp_sets,
                                        max_bound=MAX_HORIZON)
            naive = busy_window_bounds(an.streams, an.hp_sets,
                                       include_indirect=False,
                                       max_bound=MAX_HORIZON)
            sim = WormholeSimulator(mesh, routing, an.streams)
            stats = sim.simulate_streams(10_000)
            rows.append((seed, an, diagram, lumped, naive, stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "E-AB3 — diagram bound vs lumped busy-window baselines "
        "(20 streams, 2 levels, T 80-160, C 8-20)",
        f"{'seed':>5} {'diagram<=lumped':>16} {'lumped diverged':>16} "
        f"{'mean looseness':>15} {'naive unsound':>14}",
    ]
    total_naive_violations = 0
    for seed, an, diagram, lumped, naive, stats in rows:
        loose = []
        dominated = True
        diverged = 0
        naive_violations = 0
        for s in an.streams:
            sid = s.stream_id
            d = diagram[sid]
            l = lumped[sid].bound
            if l < 0:
                diverged += 1
            elif d > 0:
                dominated &= d <= l
                loose.append(l / d)
            n = naive[sid].bound
            if n > 0 and sid in stats.stream_ids() \
                    and stats.max_delay(sid) > n:
                naive_violations += 1
        total_naive_violations += naive_violations
        lines.append(
            f"{seed:5d} {str(dominated):>16} {diverged:16d} "
            f"{np.mean(loose) if loose else 0:14.2f}x {naive_violations:14d}"
        )
    lines.append(
        "(looseness = busy-window / diagram bound where both exist; "
        "'naive unsound' counts streams whose simulated max delay exceeded "
        "the direct-only busy-window bound — ignoring blocking chains "
        "under-estimates, the paper's central critique of applying RM "
        "theory directly)"
    )
    write_output("baseline_bounds", "\n".join(lines))

    # The diagram bound always dominates the safe lumped bound.
    for seed, an, diagram, lumped, naive, stats in rows:
        for s in an.streams:
            d, l = diagram[s.stream_id], lumped[s.stream_id].bound
            if d > 0 and l > 0:
                assert d <= l
