"""E-RULE — section 5's empirical rule: at least |M|/4 priority levels are
needed before the highest-priority level's ratio exceeds 0.9.

The paper states the rule from "simulation results including [those] not
presented here"; this benchmark regenerates the underlying sweep — the
top-priority ratio as a function of the number of priority levels — at
|M| = 20, and reports where the 0.9 threshold is crossed.
"""

import numpy as np

from benchmarks.common import N_SEEDS, SIM_TIME, WARMUP, write_output
from repro.analysis import format_rule_sweep, priority_rule_sweep


LEVELS = (1, 2, 3, 4, 5, 6, 8, 10)


def test_priority_level_rule(benchmark):
    def sweep_all_seeds():
        return [
            priority_rule_sweep(
                num_streams=20, levels=LEVELS, seed=seed,
                sim_time=SIM_TIME, warmup=WARMUP,
            )
            for seed in range(N_SEEDS)
        ]

    sweeps = benchmark.pedantic(sweep_all_seeds, rounds=1, iterations=1)

    parts = [format_rule_sweep(s) for s in sweeps]
    tops = {
        lv: float(np.mean([s[lv].highest_priority_ratio() for s in sweeps]))
        for lv in LEVELS
    }
    lines = [f"seed-averaged top-priority ratio vs levels (|M| = 20, "
             f"{N_SEEDS} seed(s)):"]
    crossed = None
    for lv in LEVELS:
        lines.append(f"  {lv:3d} levels: {tops[lv]:.3f}")
        if crossed is None and tops[lv] > 0.9:
            crossed = lv
    lines.append(
        f"0.9 first crossed at {crossed} levels; paper's rule predicts "
        f"~|M|/4 = 5"
    )
    parts.append("\n".join(lines))
    write_output("priority_rule", "\n\n".join(parts))

    # Shape assertions: the trend is upward and the top of the sweep is
    # far tighter than one level.
    assert tops[max(LEVELS)] > tops[1]
    assert crossed is not None
    assert crossed <= 10
