"""E-T1 — paper Table 1: 1 priority level, 20 message streams.

Paper's observation: with a single priority level the computed bound is
loose — the ratio (actual average delay / U) stays below ~0.5. The shape to
verify is that the single-level ratio is well below the multi-level ratios
of Tables 3-5.
"""

from benchmarks.common import (
    run_table_seeds,
    soundness_report,
    summarize_seeds,
    write_output,
)


def test_table1(benchmark):
    results = benchmark.pedantic(
        lambda: run_table_seeds("table1", num_streams=20, priority_levels=1),
        rounds=1,
        iterations=1,
    )
    text = summarize_seeds("table1", results)
    text += "\n" + soundness_report(results)
    write_output("table1", text)
    for r in results:
        assert set(r.rows) == {1}
        assert 0.0 < r.rows[1].mean <= 1.0
