"""E-F3 — paper Fig. 3: HP-set construction example.

Fig. 3 shows four streams (A at priority 1; B and C at priority 2 and
mutually influential; D at priority 3 overlapping B and C only) and derives
HP_A = {B direct, C direct, D indirect via (B, C)}. We rebuild the figure's
geometry on the 10x10 mesh and print the constructed HP sets.
"""

from benchmarks.common import write_output
from repro.core.hpset import build_all_hp_sets
from repro.core.render import render_hp_set
from repro.core.streams import MessageStream, StreamSet
from repro.topology import Mesh2D, XYRouting


def fig3_streams(mesh):
    """Geometric realisation of Fig. 3 under X-Y routing.

    All four streams travel east along row y=0, staggered so that the
    directed-channel overlaps are exactly the figure's: A overlaps B and C;
    B and C overlap each other and D; D never touches A's segment.
    """
    return StreamSet([
        # A: priority 1, channels (0..3)->(1..4).
        MessageStream(0, mesh.node_xy(0, 0), mesh.node_xy(4, 0),
                      priority=1, period=100, length=4, deadline=100),
        # B: priority 2, channels (3..5)->(4..6): overlaps A and D.
        MessageStream(1, mesh.node_xy(3, 0), mesh.node_xy(6, 0),
                      priority=2, period=40, length=3, deadline=100),
        # C: priority 2, channels (2..5)->(3..6): overlaps A, B and D.
        MessageStream(2, mesh.node_xy(2, 0), mesh.node_xy(6, 0),
                      priority=2, period=45, length=3, deadline=100),
        # D: priority 3, channels (5..7)->(6..8): overlaps B and C only.
        MessageStream(3, mesh.node_xy(5, 0), mesh.node_xy(8, 0),
                      priority=3, period=50, length=3, deadline=100),
    ])


def test_fig3_hp_sets(benchmark):
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    streams = fig3_streams(mesh)

    hps = benchmark.pedantic(
        lambda: build_all_hp_sets(streams, routing), rounds=1, iterations=1
    )

    names = {0: "A", 1: "B", 2: "C", 3: "D"}
    lines = ["Fig. 3 — HP-set construction (A=M0, B=M1, C=M2, D=M3)"]
    for sid in sorted(hps):
        lines.append(f"{names[sid]}: {render_hp_set(hps[sid])}")
    write_output("fig3_hpset", "\n".join(lines))

    # The figure's statements:
    assert len(hps[3]) == 0                       # D cannot be blocked
    assert hps[1].ids() == (2, 3)                 # B: C (mutual) + D
    assert hps[2].ids() == (1, 3)                 # C: B (mutual) + D
    assert hps[0].direct_ids() == (1, 2)          # A: B, C direct
    assert hps[0].indirect_ids() == (3,)          # A: D indirect
    assert hps[0][3].intermediates == frozenset({1, 2})
