"""E-T4 — paper Table 4: 5 priority levels, 20 message streams.

Paper's observation: "the more priority levels are allowed, the better the
result" — with 5 levels (= |M|/4) the highest-priority ratio should clear
0.9, and the lowest level's ratio also improves relative to Table 1."""

from benchmarks.common import (
    run_table_seeds,
    soundness_report,
    summarize_seeds,
    write_output,
)


def test_table4(benchmark):
    results = benchmark.pedantic(
        lambda: run_table_seeds("table4", num_streams=20, priority_levels=5),
        rounds=1,
        iterations=1,
    )
    text = summarize_seeds("table4", results)
    text += "\n" + soundness_report(results)

    top = sum(r.highest_priority_ratio() for r in results) / len(results)
    text += (
        f"\nshape: top-priority ratio with 5 levels (= |M|/4) = {top:.3f} "
        f"(paper's rule predicts > 0.9)"
    )
    write_output("table4", text)
    assert top > 0.75  # allow seed noise around the paper's 0.9 threshold
