#!/usr/bin/env python
"""Four switching worlds, one workload: the paper's positioning, measured.

The paper motivates flit-level preemptive wormhole switching against
(1) classical wormhole switching (priority inversion), (2) hardware
preemption a la Song et al. (kill + retransmit) and (3) the
store-and-forward real-time channels of the packet-switched literature.
This example runs one workload through all four and prints measured
latency per priority class plus each world's analytic guarantee.

Run:  python examples/switching_comparison.py
"""

from repro import FeasibilityAnalyzer, Mesh2D, XYRouting
from repro.rtchannel import StoreAndForwardSimulator, holistic_bounds
from repro.sim import PaperWorkload, WormholeSimulator

SIM_TIME = 15_000
WARMUP = 1_500


def main() -> None:
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    wl = PaperWorkload(num_streams=20, priority_levels=4, seed=1,
                       period_range=(300, 700))
    streams = wl.generate(mesh)

    worlds = {}
    for name, vc_mode in [
        ("preemptive VCs (paper)", "per_priority"),
        ("classical wormhole", "single"),
        ("Song kill+retransmit", "preempt_kill"),
    ]:
        sim = WormholeSimulator(mesh, routing, streams, vc_mode=vc_mode,
                                warmup=WARMUP)
        stats = sim.simulate_streams(SIM_TIME)
        worlds[name] = (stats.priority_stats(),
                        getattr(sim, "retransmissions", 0))
    saf = StoreAndForwardSimulator(mesh, routing, streams, warmup=WARMUP)
    worlds["store-and-forward"] = (
        saf.simulate_streams(SIM_TIME).priority_stats(), 0
    )

    levels = sorted(worlds["preemptive VCs (paper)"][0], reverse=True)
    print(f"{'switching world':<24}"
          + "".join(f"  P{p} mean/max" for p in levels)
          + "   retx")
    for name, (pooled, retx) in worlds.items():
        cells = "".join(
            f" {pooled[p].mean:7.1f}/{pooled[p].maximum:<5d}" for p in levels
        )
        print(f"{name:<24}{cells} {retx:6d}")

    print("\nanalytic guarantees (top-priority streams):")
    analyzer = FeasibilityAnalyzer(streams, routing)
    worm_bounds = analyzer.all_upper_bounds(max_horizon=1 << 16)
    saf_bounds = holistic_bounds(streams, routing)
    top = max(levels)
    for s in streams.sorted_by_priority():
        if s.priority != top:
            continue
        wb = worm_bounds[s.stream_id]
        sb = saf_bounds[s.stream_id].bound
        print(f"  M{s.stream_id}: wormhole U = {wb}, "
              f"store-and-forward bound = {sb} "
              f"({sb / wb:.1f}x looser)")


if __name__ == "__main__":
    main()
