#!/usr/bin/env python
"""Measured channel occupancy next to the analytical timing diagram.

The analysis predicts M4's worst case in the paper's §4.4 example with a
timing diagram (Fig. 9, U_4 = 33). Here we *measure* the corresponding
channel occupancy: all five streams released at the critical instant, a
Gantt recorder on the channels of M4's route, cycles 1..50. The measured
chart shows the same actors (M0's preemptions, M2/M3 burst, M4 threading
the gaps) with real pipelining, and M4's measured delay sits under the
predicted bound.

Run:  python examples/measured_vs_predicted.py
"""

from repro import (
    FeasibilityAnalyzer,
    HPEntry,
    HPSet,
    Mesh2D,
    MessageStream,
    StreamSet,
    XYRouting,
    render_diagram,
)
from repro.sim import GanttRecorder, WormholeSimulator, render_gantt

EXAMPLE = [
    ((7, 3), (7, 7), 5, 15, 4, 15, 7),
    ((1, 1), (5, 4), 4, 10, 2, 10, 8),
    ((2, 1), (7, 5), 3, 40, 4, 40, 12),
    ((4, 1), (8, 5), 2, 45, 9, 45, 16),
    ((6, 1), (9, 3), 1, 50, 6, 50, 10),
]


def main() -> None:
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    streams = StreamSet()
    for i, (s, r, p, t, c, d, latency) in enumerate(EXAMPLE):
        streams.add(MessageStream(
            i, mesh.node_xy(*s), mesh.node_xy(*r), priority=p, period=t,
            length=c, deadline=d, latency=latency,
        ))

    paper_hp = {
        3: HPSet(3, [HPEntry.direct(1)]),
        4: HPSet(4, [HPEntry.indirect(0, [2]), HPEntry.indirect(1, [2, 3]),
                     HPEntry.direct(2), HPEntry.direct(3)]),
    }
    analyzer = FeasibilityAnalyzer(streams, routing, hp_override=paper_hp)
    final, _ = analyzer.diagram_for(4)
    print("== predicted (Fig. 9): worst-case timing diagram of M4, "
          "U_4 = 33 ==")
    print(render_diagram(final, upper_bound=final.upper_bound(10)))

    route = routing.route_channels(streams[4].src, streams[4].dst)
    gantt = GanttRecorder(start=1, end=50, channels=route)
    sim = WormholeSimulator(mesh, routing, streams, gantt=gantt)
    stats = sim.simulate_streams(60)

    print("\n== measured: flit-level occupancy of M4's route, "
          "critical-instant release ==")
    print(render_gantt(gantt, channels=route, lo=1, hi=50,
                       topology=mesh))
    print(f"\nM4 measured delay: {stats.max_delay(4)} "
          f"(predicted bound 33; with overlap-derived HP sets, 37)")
    print("note: the prediction serialises the whole HP set onto one "
          "abstract resource; the measurement shows the same preemptions "
          "spread over the physical pipeline, always finishing earlier.")


if __name__ == "__main__":
    main()
