#!/usr/bin/env python
"""Choosing priorities: the step the paper leaves to the integrator.

The paper's analysis takes priority values as inputs; this example shows
how to *pick* them with the feasibility test in the loop:

1. draw a workload with deadlines well below the periods;
2. try rate-monotonic and deadline-monotonic orders;
3. run Audsley's bottom-up search with the paper's test as the oracle;
4. quantise the winning order into |M|/4 priority levels (the paper's
   VC-budget rule) and see what the quantisation costs.

Run:  python examples/priority_assignment.py
"""

import dataclasses

import numpy as np

from repro import FeasibilityAnalyzer, Mesh2D, StreamSet, XYRouting
from repro.core import (
    audsley_assignment,
    deadline_monotonic_assignment,
    group_into_levels,
    rate_monotonic_assignment,
)
from repro.sim import PaperWorkload


def verdict_line(name, streams, routing):
    report = FeasibilityAnalyzer(streams, routing).determine_feasibility()
    misses = report.infeasible_ids()
    slacks = [v.slack for v in report.verdicts.values()
              if v.slack is not None]
    tightest = min(slacks) if slacks else None
    print(f"  {name:<22} {'FEASIBLE' if report.success else 'fails':<9} "
          f"misses={list(misses) or '-'} tightest slack={tightest}")
    return report.success


def main() -> None:
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    rng = np.random.default_rng(7)

    wl = PaperWorkload(num_streams=10, priority_levels=1, seed=7,
                       period_range=(150, 400), length_range=(10, 30))
    drawn = wl.generate(mesh)
    streams = StreamSet()
    for s in drawn:
        deadline = max(s.length + 5, int(s.period * rng.uniform(0.2, 0.5)))
        streams.add(dataclasses.replace(s, deadline=deadline))

    print("workload: 10 streams, deadlines at 20-50% of the period\n")
    print("assignment policies under the paper's feasibility test:")
    verdict_line("rate-monotonic", rate_monotonic_assignment(streams),
                 routing)
    dm = deadline_monotonic_assignment(streams)
    dm_ok = verdict_line("deadline-monotonic", dm, routing)

    opa = audsley_assignment(streams, routing)
    if opa is None:
        print("  audsley (OPA)          no feasible order found")
    else:
        verdict_line("audsley (OPA)", opa, routing)
        order = sorted(opa, key=lambda s: -s.priority)
        print("  OPA order (high->low):",
              " > ".join(f"M{s.stream_id}" for s in order))

    best = opa if opa is not None else dm
    if best is not None and dm_ok:
        levels = max(1, len(streams) // 4)
        grouped = group_into_levels(best, levels)
        print(f"\nquantised to {levels} levels (the paper's |M|/4 rule):")
        verdict_line(f"{levels}-level grouping", grouped, routing)


if __name__ == "__main__":
    main()
