#!/usr/bin/env python
"""Quickstart: feasibility-test a handful of real-time message streams.

This walks the full public API in ~40 lines:

1. build the network (10x10 mesh, X-Y routing — the paper's setup);
2. declare periodic message streams (source, destination, priority, period
   T, length C in flits, deadline D);
3. run the feasibility analysis: per-stream delay upper bounds U and the
   overall success/fail verdict (U_i <= D_i for all i);
4. cross-check with the flit-level simulator: no measured delay may exceed
   its bound.

Run:  python examples/quickstart.py
"""

from repro import FeasibilityAnalyzer, Mesh2D, MessageStream, StreamSet, XYRouting
from repro.sim import WormholeSimulator


def main() -> None:
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)

    streams = StreamSet([
        # A sensor fusion flow: small, frequent, urgent.
        MessageStream(0, mesh.node_xy(1, 1), mesh.node_xy(6, 1),
                      priority=3, period=80, length=6, deadline=40),
        # A control loop crossing the same row.
        MessageStream(1, mesh.node_xy(3, 1), mesh.node_xy(8, 1),
                      priority=2, period=120, length=10, deadline=90),
        # Bulk telemetry, lowest priority, generous deadline.
        MessageStream(2, mesh.node_xy(0, 1), mesh.node_xy(9, 1),
                      priority=1, period=300, length=40, deadline=300),
    ])

    analyzer = FeasibilityAnalyzer(streams, routing)
    report = analyzer.determine_feasibility()

    print("feasibility:", "SUCCESS" if report.success else "FAIL")
    for sid, verdict in sorted(report.verdicts.items()):
        s = verdict.stream
        print(
            f"  M{sid}: priority {s.priority}, L={s.latency:>3}, "
            f"U={verdict.upper_bound:>3}, D={s.deadline:>3} "
            f"-> {'ok' if verdict.feasible else 'MISS'} "
            f"(slack {verdict.slack})"
        )

    # Validate the guarantees against the cycle-accurate simulator.
    sim = WormholeSimulator(mesh, routing, analyzer.streams)
    stats = sim.simulate_streams(5_000)
    print("\nsimulated max delay vs bound:")
    for sid in stats.stream_ids():
        u = report.verdicts[sid].upper_bound
        mx = stats.max_delay(sid)
        print(f"  M{sid}: observed max {mx:>3} <= U {u:>3}: {mx <= u}")


if __name__ == "__main__":
    main()
