#!/usr/bin/env python
"""Host-processor admission control (the paper's Fig. 1 system model).

The host processor owns all traffic information and runs the schedulability
test whenever a real-time job asks to be loaded. This example plays a
sequence of job arrivals against an :class:`AdmissionController`: each job
is a small bundle of message streams, admitted only if the *entire* admitted
set stays feasible (no existing guarantee may be broken). Finally the
admitted set is simulated to confirm every deadline is honoured.

Run:  python examples/admission_control.py
"""

import numpy as np

from repro import AdmissionController, Mesh2D, MessageStream, XYRouting
from repro.core import FeasibilityAnalyzer, format_interference_report, interference_report
from repro.sim import WormholeSimulator


def make_job(mesh, ctrl, rng, *, n_streams, priority):
    """Build one job: a few streams between random distinct nodes."""
    streams = []
    for _ in range(n_streams):
        src = int(rng.integers(0, mesh.num_nodes))
        dst = int(rng.integers(0, mesh.num_nodes - 1))
        if dst >= src:
            dst += 1
        period = int(rng.integers(150, 400))
        streams.append(MessageStream(
            stream_id=ctrl.fresh_id(),
            src=src,
            dst=dst,
            priority=priority,
            period=period,
            # Deadlines well below the period keep admission selective.
            length=int(rng.integers(10, 40)),
            deadline=max(30, period // 4),
        ))
    return streams


def _trial_set(ctrl, job):
    """The admitted set plus a rejected job, for post-mortem diagnosis."""
    from repro import StreamSet

    trial = StreamSet(ctrl.admitted)
    for s in job:
        trial.add(s)
    return trial


def main() -> None:
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    ctrl = AdmissionController(routing)
    rng = np.random.default_rng(2026)

    admitted_jobs = []
    print("job arrivals (each = 3 streams at one priority level):")
    for job_no in range(1, 13):
        priority = int(rng.integers(1, 5))
        job = make_job(mesh, ctrl, rng, n_streams=3, priority=priority)
        decision = ctrl.try_admit(job)
        state = "ADMITTED" if decision.admitted else "REJECTED"
        detail = ""
        if not decision.admitted:
            detail = f" (would break streams {list(decision.violations)})"
        print(f"  job {job_no:>2} (priority {priority}): {state}{detail}")
        if decision.admitted:
            admitted_jobs.append(job)
        elif decision.violations:
            # Diagnose the first broken guarantee: who blocks it, and by
            # how much? (the question an operator asks after a rejection)
            victim = decision.violations[0]
            trial = FeasibilityAnalyzer(
                _trial_set(ctrl, job), ctrl.routing
            )
            print("      diagnosis: "
                  + format_interference_report(
                      interference_report(trial, victim)
                  ).replace("\n", "\n      "))


    admitted = ctrl.admitted
    print(f"\nadmitted {len(admitted_jobs)} jobs, "
          f"{len(admitted)} streams, total injection utilization "
          f"{admitted.total_utilization():.2f}")

    report = ctrl.current_report()
    worst = min(
        (v.slack for v in report.verdicts.values() if v.slack is not None),
        default=None,
    )
    print(f"re-checked feasibility: {report.success}, tightest slack {worst}")

    print("\nvalidating guarantees by simulation (8000 flit times)...")
    sim = WormholeSimulator(mesh, routing, admitted)
    stats = sim.simulate_streams(8_000)
    misses = [
        sid for sid in stats.stream_ids()
        if stats.max_delay(sid) > admitted[sid].deadline
    ]
    print(f"deadline misses among admitted streams: {misses or 'none'}")


if __name__ == "__main__":
    main()
