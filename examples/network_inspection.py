#!/usr/bin/env python
"""Inspecting a loaded network: traces, queueing split, link heatmap.

When a computed bound looks surprisingly large, two questions decide the
next move: *is the delay queueing or contention?* and *which links are
hot?* This example loads one mesh row heavily, attaches a
:class:`TraceRecorder`, and prints:

* per-stream queueing/network delay split;
* the ASCII link-utilization heatmap of the mesh;
* the per-channel utilization of the contended row, side by side with the
  per-link stream memberships the HP analysis uses.

Run:  python examples/network_inspection.py
"""

from repro import Mesh2D, MessageStream, StreamSet, XYRouting
from repro.baselines import rm_link_feasibility
from repro.sim import TraceRecorder, WormholeSimulator, render_mesh_utilization


def main() -> None:
    mesh = Mesh2D(8, 8)
    routing = XYRouting(mesh)
    y = 4
    streams = StreamSet([
        # Heavy bulk stream across the row.
        MessageStream(0, mesh.node_xy(0, y), mesh.node_xy(7, y),
                      priority=1, period=70, length=45, deadline=7000),
        # Mid-row crossing traffic.
        MessageStream(1, mesh.node_xy(3, y), mesh.node_xy(7, y),
                      priority=2, period=90, length=20, deadline=7000),
        # An urgent stream with a period shorter than its own service time
        # (self-queueing) plus a vertical stream away from the hot row.
        MessageStream(2, mesh.node_xy(1, y), mesh.node_xy(5, y),
                      priority=3, period=25, length=18, deadline=7000),
        MessageStream(3, mesh.node_xy(6, 0), mesh.node_xy(6, 3),
                      priority=2, period=150, length=10, deadline=7000),
    ])

    trace = TraceRecorder()
    sim = WormholeSimulator(mesh, routing, streams, trace=trace,
                            warmup=1_000)
    stats = sim.simulate_streams(12_000)

    print("queueing vs network delay (per stream):")
    for s in streams:
        sid = s.stream_id
        if sid not in stats.stream_ids():
            continue
        share = trace.queueing_share(sid)
        print(f"  M{sid} (P{s.priority}): mean delay "
              f"{stats.mean_delay(sid):7.1f}, queueing share {share:6.1%}"
              + ("  <- self-interference!" if share > 0.5 else ""))

    print()
    print(render_mesh_utilization(mesh, sim.channel_transfers, sim.now))

    print("\nhot-row channels vs RM per-link view:")
    rm = rm_link_feasibility(streams, routing)
    util = sim.link_utilization()
    for x in range(7):
        ch = (mesh.node_xy(x, y), mesh.node_xy(x + 1, y))
        if ch in rm.verdicts:
            v = rm.verdicts[ch]
            print(f"  ({x},{y})->({x + 1},{y}): measured "
                  f"{util.get(ch, 0.0):5.1%}, RM demand {v.utilization:5.1%}"
                  f", streams {list(v.stream_ids)}")


if __name__ == "__main__":
    main()
