#!/usr/bin/env python
"""Priority inversion demo (the paper's Fig. 2 motivation).

Classical wormhole switching has no priority handling: a physical channel
belongs to whichever message holds it until the tail passes, and
high-priority messages queue behind bulk traffic. The paper's remedy —
one virtual channel per priority level plus flit-level preemptive priority
arbitration — removes the inversion entirely.

This script simulates the same four-stream contention pattern under both
router models and prints the latency of each priority class side by side.

Run:  python examples/priority_inversion.py
"""

from repro.baselines import compare_arbitration, priority_inversion_scenario


def main() -> None:
    mesh, routing, streams = priority_inversion_scenario()

    print("contention pattern (all on one mesh row):")
    for s in streams:
        print(
            f"  M{s.stream_id}: priority {s.priority}, "
            f"{mesh.xy(s.src)} -> {mesh.xy(s.dst)}, C={s.length}, T={s.period}"
        )

    cmp = compare_arbitration(mesh, routing, streams,
                              until=30_000, warmup=2_000)

    print(f"\n{'prio':>5} {'preemptive mean/max':>22} "
          f"{'classical mean/max':>22} {'blow-up':>9}")
    for p in sorted(cmp.preemptive, reverse=True):
        pre, cla = cmp.preemptive[p], cmp.classical[p]
        print(f"P{p:>4} {pre.mean:10.1f}/{pre.maximum:<10d} "
              f"{cla.mean:10.1f}/{cla.maximum:<10d} "
              f"{cmp.blowup(p):8.1f}x")

    top = max(cmp.preemptive)
    top_stream = next(s for s in streams if s.priority == top)
    no_load = routing.hop_count(top_stream.src, top_stream.dst) \
        + top_stream.length - 1
    print(
        f"\nwith preemption the top-priority stream always measures its "
        f"no-load latency ({no_load} flit times); classically it is "
        f"{cmp.blowup(top):.1f}x slower on average — priority inversion."
    )


if __name__ == "__main__":
    main()
