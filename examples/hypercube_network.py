#!/usr/bin/env python
"""The method on a hypercube (the paper's "general point-to-point" claim).

Section 2 of the paper states the scheme applies to any topology with a
deterministic deadlock-free routing function, naming hypercubes alongside
meshes. This example runs the full pipeline — deadlock check, bound
computation, flit-level simulation, soundness comparison — on a 6-cube
(64 nodes) with e-cube routing.

Run:  python examples/hypercube_network.py
"""

from repro import ECubeRouting, FeasibilityAnalyzer, Hypercube, is_deadlock_free
from repro.sim import PaperWorkload, WormholeSimulator


def main() -> None:
    cube = Hypercube(6)
    routing = ECubeRouting(cube)
    print(f"topology: {cube!r} ({cube.num_nodes} nodes, "
          f"{cube.num_channels()} directed channels)")
    print("e-cube routing deadlock-free:", is_deadlock_free(routing))

    wl = PaperWorkload(num_streams=24, priority_levels=6, seed=11,
                       period_range=(200, 500))
    streams = wl.generate(cube)

    analyzer = FeasibilityAnalyzer(streams, routing)
    bounds = analyzer.all_upper_bounds(max_horizon=1 << 16)
    report = analyzer.determine_feasibility()
    print(f"\nfeasibility at D = T: "
          f"{'success' if report.success else 'fail'} "
          f"({len(report.infeasible_ids())} misses)")

    sim = WormholeSimulator(cube, routing, analyzer.streams, warmup=1_000)
    stats = sim.simulate_streams(15_000)

    print(f"\n{'stream':>7} {'prio':>5} {'hops':>5} {'L':>4} {'U':>6} "
          f"{'mean':>7} {'max':>5} {'max<=U':>7}")
    violations = 0
    for s in analyzer.streams.sorted_by_priority():
        sid = s.stream_id
        if sid not in stats.stream_ids():
            continue
        u = bounds[sid]
        mx = stats.max_delay(sid)
        ok = u > 0 and mx <= u
        violations += 0 if ok else 1
        print(f"M{sid:>6} {s.priority:>5} "
              f"{routing.hop_count(s.src, s.dst):>5} {s.latency:>4} "
              f"{u:>6} {stats.mean_delay(sid):>7.1f} {mx:>5} {str(ok):>7}")
    print(f"\nbound violations: {violations} "
          f"(the method transfers to the hypercube unchanged)")

    torus_demo()


def torus_demo() -> None:
    """The same pipeline on a torus: wrap links need dateline VC classes
    for deadlock freedom; the simulator provisions them automatically."""
    from repro import Torus, TorusDimensionOrderRouting

    torus = Torus((8, 8))
    routing = TorusDimensionOrderRouting(torus)
    print(f"\ntopology: {torus!r} "
          f"(dateline VC classes: {routing.num_vc_classes})")
    print("minimal dimension-order routing deadlock-free:",
          is_deadlock_free(routing))

    wl = PaperWorkload(num_streams=16, priority_levels=4, seed=5,
                       period_range=(200, 500))
    streams = wl.generate(torus)
    analyzer = FeasibilityAnalyzer(streams, routing, residency_margin=1)
    bounds = analyzer.all_upper_bounds(max_horizon=1 << 16)
    sim = WormholeSimulator(torus, routing, analyzer.streams, warmup=1_000)
    stats = sim.simulate_streams(12_000)
    print(f"per-port VCs: {sim.num_vcs} "
          f"(4 priority levels x {sim.num_vc_classes} classes)")
    violations = sum(
        1 for sid in stats.stream_ids()
        if bounds[sid] > 0 and stats.max_delay(sid) > bounds[sid]
    )
    wrap_users = sum(
        1 for s in analyzer.streams
        if any(routing.route_classes(s.src, s.dst))
    )
    print(f"streams crossing a dateline: {wrap_users}/16; "
          f"bound violations: {violations}")


if __name__ == "__main__":
    main()
