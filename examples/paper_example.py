#!/usr/bin/env python
"""The paper's section 4.4 worked example, end to end, with ASCII figures.

Reproduces:

* the five message streams M0..M4 on the 10x10 mesh (constants
  reconstructed from the OCR-damaged text; DESIGN.md documents how);
* the HP sets (with the paper's printed HP_3/HP_4 injected via
  ``hp_override`` — the printed HP_3 omits M2 despite a genuine path
  overlap; we print both variants);
* Fig. 7: the initial timing diagram of HP_4 (7 free slots < L_4 = 10);
* Fig. 8: the blocking dependency graph of HP_4;
* Fig. 9: the final diagram after Modify_Diagram, U_4 = 33;
* the bounds U = (7, 8, 26, 20, 33) and the success verdict.

Run:  python examples/paper_example.py
"""

from repro import (
    FeasibilityAnalyzer,
    HPEntry,
    HPSet,
    Mesh2D,
    MessageStream,
    StreamSet,
    XYRouting,
    render_bdg,
    render_diagram,
    render_hp_set,
)
from repro.core.bdg import build_bdg

#: (src, dst, P, T, C, D, L) — section 4.4, reconstructed constants.
EXAMPLE = [
    ((7, 3), (7, 7), 5, 15, 4, 15, 7),
    ((1, 1), (5, 4), 4, 10, 2, 10, 8),
    ((2, 1), (7, 5), 3, 40, 4, 40, 12),
    ((4, 1), (8, 5), 2, 45, 9, 45, 16),
    ((6, 1), (9, 3), 1, 50, 6, 50, 10),
]


def build_streams(mesh: Mesh2D) -> StreamSet:
    streams = StreamSet()
    for i, (s, r, p, t, c, d, latency) in enumerate(EXAMPLE):
        streams.add(MessageStream(
            i, mesh.node_xy(*s), mesh.node_xy(*r), priority=p, period=t,
            length=c, deadline=d, latency=latency,
        ))
    return streams


def main() -> None:
    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    streams = build_streams(mesh)

    paper_hp = {
        3: HPSet(3, [HPEntry.direct(1)]),
        4: HPSet(4, [
            HPEntry.indirect(0, [2]),
            HPEntry.indirect(1, [2, 3]),
            HPEntry.direct(2),
            HPEntry.direct(3),
        ]),
    }
    analyzer = FeasibilityAnalyzer(streams, routing, hp_override=paper_hp)

    print("== HP sets (paper's printed values) ==")
    for sid in sorted(analyzer.hp_sets):
        print(render_hp_set(analyzer.hp_sets[sid]))

    init, _ = analyzer.diagram_for(4, apply_modify=False)
    print(f"\n== Fig. 7: initial diagram of HP_4 "
          f"({init.num_free_slots()} free slots, L_4 = 10) ==")
    print(render_diagram(init))

    g = build_bdg(analyzer.hp_sets[4], analyzer.blockers)
    print("\n== Fig. 8 ==")
    print(render_bdg(g, 4))

    final, removed = analyzer.diagram_for(4)
    print("\n== Fig. 9: after Modify_Diagram ==")
    print("released instances:",
          {f"M{k}": sorted(v) for k, v in removed.items()})
    print(render_diagram(final, upper_bound=final.upper_bound(10)))

    report = analyzer.determine_feasibility()
    print(f"\nU = {report.upper_bounds()}  (paper: 7, 8, 26, 20, 33)")
    print("verdict:", "success" if report.success else "fail")

    # The documented inconsistency: with HP sets derived from the printed
    # coordinates (M2 overlaps M3), the bounds for M3/M4 grow — and the
    # larger U_3 is the one the simulation actually requires.
    computed = FeasibilityAnalyzer(streams, routing)
    print("\n== overlap-derived HP sets (no override) ==")
    for sid in sorted(computed.hp_sets):
        print(render_hp_set(computed.hp_sets[sid]))
    print("U =", computed.determine_feasibility().upper_bounds(),
          " (U_3 = 30 is the sound bound; see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
