#!/usr/bin/env python
"""Regenerate the paper's evaluation tables from the command line.

Runs any of the five table configurations (or a custom one) through the
full pipeline — workload draw, period inflation, bound computation,
flit-level simulation — and prints the paper-style rows plus a soundness
check (max observed delay vs U for every stream).

Run:  python examples/table_sweep.py [table1|table2|table3|table4|table5]
      python examples/table_sweep.py --streams 30 --levels 6 --seed 7
"""

import argparse

from repro.analysis import (
    PAPER_TABLES,
    format_table,
    run_paper_table,
    run_table_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("table", nargs="?", default="table3",
                        choices=sorted(PAPER_TABLES),
                        help="paper table to regenerate (default: table3)")
    parser.add_argument("--streams", type=int, default=None,
                        help="override: number of message streams")
    parser.add_argument("--levels", type=int, default=None,
                        help="override: number of priority levels")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sim-time", type=int, default=30_000)
    args = parser.parse_args()

    if args.streams or args.levels:
        num_streams, levels = PAPER_TABLES[args.table]
        result = run_table_experiment(
            name="custom",
            num_streams=args.streams or num_streams,
            priority_levels=args.levels or levels,
            seed=args.seed,
            sim_time=args.sim_time,
        )
    else:
        result = run_paper_table(args.table, seed=args.seed,
                                 sim_time=args.sim_time)

    print(format_table(result))

    violations = [
        (sid, result.stats.max_delay(sid), result.upper_bounds[sid])
        for sid in result.stats.stream_ids()
        if result.upper_bounds[sid] > 0
        and result.stats.max_delay(sid) > result.upper_bounds[sid]
    ]
    if violations:
        print("\nBOUND VIOLATIONS:")
        for sid, mx, u in violations:
            print(f"  stream {sid}: observed {mx} > U = {u}")
    else:
        print("\nsoundness: every observed delay stayed within its bound")


if __name__ == "__main__":
    main()
