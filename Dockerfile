# Fleet gateway image: `repro gateway` fronting N engine shards per
# tenant with journal-shipping standbys (docs/DEPLOYMENT.md).
#
#   docker build -t repro-fleet .
#   docker run --rm -p 7316:7316 -v repro-state:/var/lib/repro \
#       repro-fleet --tenant acme=s3cret --mesh 10x10 --shards 2
#
# Arguments after the image name are appended to the entrypoint, so
# tenants, topology and shard count are `docker run` flags.

FROM python:3.12-slim

# curl is for HEALTHCHECK only; keep the layer small.
RUN apt-get update \
    && apt-get install -y --no-install-recommends curl \
    && rm -rf /var/lib/apt/lists/*

WORKDIR /opt/repro
COPY pyproject.toml setup.py README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

# Journals, snapshots and standby state live here; mount a volume or a
# container restart has nothing to recover from.
RUN mkdir -p /var/lib/repro
VOLUME /var/lib/repro

EXPOSE 7316

# /healthz is 200 only while every shard is alive and writable, so the
# container goes `unhealthy` the moment a primary dies or degrades.
HEALTHCHECK --interval=10s --timeout=3s --start-period=15s \
    CMD curl -fsS http://127.0.0.1:7316/healthz || exit 1

ENTRYPOINT ["repro", "gateway", "--host", "0.0.0.0", "--port", "7316", \
            "--state-dir", "/var/lib/repro"]
CMD []
